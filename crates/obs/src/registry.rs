//! The built-in thread-safe [`Recorder`]: aggregates spans into a tree
//! keyed by `(parent, name)`, counters into a sorted map, and observations
//! into fixed-bucket histograms.
//!
//! Aggregation (not tracing): a span node stores `count / total / min / max`
//! rather than individual intervals, so memory is bounded by the number of
//! distinct instrumentation points, not by the number of events — the
//! registry can stay on for a whole interactive session or bench run.

use crate::snapshot::{CounterSnap, HistogramSnap, Snapshot, SpanSnap};
use crate::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::thread::ThreadId;

/// Latency histogram upper bounds in nanoseconds: 1µs, 10µs, 100µs, 1ms,
/// 10ms, 100ms, 1s, 10s. An observation lands in the first bucket whose
/// bound it does not exceed (`v ≤ bound`); larger values land in the
/// overflow bucket, so a histogram has `LATENCY_BOUNDS_NS.len() + 1`
/// counts.
pub const LATENCY_BOUNDS_NS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Magnitude histogram upper bounds (powers of four): for vertex counts,
/// widths, sizes. Same `v ≤ bound` semantics as [`LATENCY_BOUNDS_NS`].
pub const COUNT_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384];

/// Aggregated statistics of one span node.
#[derive(Debug, Clone, Default)]
struct SpanStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        if self.count == 0 || ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }
}

#[derive(Debug)]
struct SpanNode {
    name: &'static str,
    /// `u32::MAX` marks a root span.
    parent: u32,
    children: Vec<u32>,
    stats: SpanStats,
}

const NO_PARENT: u32 = u32::MAX;

#[derive(Debug, Default)]
struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(bucket) {
            *c += 1;
        }
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }
}

#[derive(Debug, Default)]
struct State {
    nodes: Vec<SpanNode>,
    /// `(parent, name) → node`, so the same name under different parents is
    /// a distinct tree node.
    index: BTreeMap<(u32, &'static str), u32>,
    /// Per-thread stack of open spans (linear scan: thread counts are tiny).
    stacks: Vec<(ThreadId, Vec<u32>)>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl State {
    fn stack_mut(&mut self, tid: ThreadId) -> &mut Vec<u32> {
        let pos = match self.stacks.iter().position(|(t, _)| *t == tid) {
            Some(p) => p,
            None => {
                self.stacks.push((tid, Vec::new()));
                self.stacks.len() - 1
            }
        };
        &mut self.stacks[pos].1
    }
}

/// The built-in aggregating recorder. See the module docs; construct via
/// [`Registry::new`] or, more commonly, [`crate::Obs::enabled`].
#[derive(Debug, Default)]
pub struct Registry {
    state: Mutex<State>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // Poisoning only matters if another thread panicked mid-record;
        // metric state is append-only aggregates, safe to keep using.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Recorder for Registry {
    fn span_start(&self, name: &'static str) -> u32 {
        let tid = std::thread::current().id();
        let mut s = self.lock();
        let parent = s.stack_mut(tid).last().copied().unwrap_or(NO_PARENT);
        let id = match s.index.get(&(parent, name)) {
            Some(&id) => id,
            None => {
                let id = s.nodes.len() as u32;
                s.nodes.push(SpanNode {
                    name,
                    parent,
                    children: Vec::new(),
                    stats: SpanStats::default(),
                });
                s.index.insert((parent, name), id);
                if parent != NO_PARENT {
                    if let Some(p) = s.nodes.get_mut(parent as usize) {
                        p.children.push(id);
                    }
                }
                id
            }
        };
        s.stack_mut(tid).push(id);
        id
    }

    fn span_end(&self, token: u32, elapsed_ns: u64) {
        let tid = std::thread::current().id();
        let mut s = self.lock();
        let stack = s.stack_mut(tid);
        // Normal case: the span being closed is the innermost open one.
        // Guards dropped out of order (possible but discouraged) just
        // remove their own entry.
        if let Some(pos) = stack.iter().rposition(|&id| id == token) {
            stack.truncate(pos);
        }
        if let Some(node) = s.nodes.get_mut(token as usize) {
            node.stats.record(elapsed_ns);
        }
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut s = self.lock();
        let slot = s.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn observe_ns(&self, name: &'static str, ns: u64) {
        let mut s = self.lock();
        s.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(LATENCY_BOUNDS_NS))
            .observe(ns);
    }

    fn observe_count(&self, name: &'static str, value: u64) {
        let mut s = self.lock();
        s.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(COUNT_BOUNDS))
            .observe(value);
    }

    fn snapshot(&self) -> Snapshot {
        let s = self.lock();
        fn build(s: &State, id: u32) -> SpanSnap {
            let (name, children, stats) = match s.nodes.get(id as usize) {
                Some(n) => (n.name, n.children.clone(), n.stats.clone()),
                None => ("?", Vec::new(), SpanStats::default()),
            };
            SpanSnap {
                name: name.to_string(),
                count: stats.count,
                total_ns: stats.total_ns,
                min_ns: stats.min_ns,
                max_ns: stats.max_ns,
                children: children.iter().map(|&c| build(s, c)).collect(),
            }
        }
        let roots: Vec<SpanSnap> = s
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == NO_PARENT)
            .map(|(i, _)| build(&s, i as u32))
            .collect();
        let counters: Vec<CounterSnap> = s
            .counters
            .iter()
            .map(|(&name, &value)| CounterSnap {
                name: name.to_string(),
                value,
            })
            .collect();
        let histograms: Vec<HistogramSnap> = s
            .histograms
            .iter()
            .map(|(&name, h)| HistogramSnap {
                name: name.to_string(),
                bounds: h.bounds,
                counts: h.counts.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
            })
            .collect();
        Snapshot {
            spans: roots,
            counters,
            histograms,
        }
    }
}
