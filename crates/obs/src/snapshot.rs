//! Immutable snapshots of a [`crate::Registry`] plus the JSON and
//! human-readable exporters.
//!
//! JSON is emitted by a small hand-rolled writer (the workspace is
//! offline-vendored; no serde). The shape is stable and documented in
//! `ARCHITECTURE.md` § "Performance model":
//!
//! ```json
//! {
//!   "spans": [ {"name": "...", "count": 1, "total_ns": 2, "min_ns": 2,
//!               "max_ns": 2, "children": [ ... ]} ],
//!   "counters": {"name": 3},
//!   "histograms": {"name": {"bounds": [...], "counts": [...],
//!                            "count": 1, "sum": 2, "min": 2, "max": 2}}
//! }
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// What kind of metric a name identifies (see [`crate::names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// A hierarchical timing span.
    Span,
    /// A monotonic counter.
    Counter,
    /// A fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// Lower-case label used in docs tables.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Span => "span",
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One span node of the snapshot tree.
#[derive(Debug, Clone)]
pub struct SpanSnap {
    /// Span name (shared by all occurrences under one parent).
    pub name: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total time across all entries, nanoseconds.
    pub total_ns: u64,
    /// Fastest single entry, nanoseconds.
    pub min_ns: u64,
    /// Slowest single entry, nanoseconds.
    pub max_ns: u64,
    /// Child spans (opened while this span was innermost).
    pub children: Vec<SpanSnap>,
}

impl SpanSnap {
    /// Total time of direct children, nanoseconds.
    pub fn children_total_ns(&self) -> u64 {
        self.children.iter().map(|c| c.total_ns).sum()
    }

    /// Fraction of this span's time attributed to child spans (0 when the
    /// span never ran). The acceptance bar for the interactive pipeline is
    /// that phase children cover ≥ 0.9 of each step span.
    pub fn child_coverage(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.children_total_ns() as f64 / self.total_ns as f64
        }
    }
}

/// One counter.
#[derive(Debug, Clone)]
pub struct CounterSnap {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnap {
    /// Histogram name.
    pub name: String,
    /// Bucket upper bounds (`v ≤ bound`); the final count is overflow.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

/// A point-in-time export of everything a registry aggregated.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Root spans (no parent), each carrying its subtree.
    pub spans: Vec<SpanSnap>,
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnap>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSnap>,
}

impl Snapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Walk a span path from the roots, e.g. `["session.add_edge",
    /// "spig.construct"]`.
    pub fn span(&self, path: &[&str]) -> Option<&SpanSnap> {
        let (first, rest) = path.split_first()?;
        let mut node = self.spans.iter().find(|s| s.name == *first)?;
        for name in rest {
            node = node.children.iter().find(|c| c.name == *name)?;
        }
        Some(node)
    }

    /// Depth-first iteration over every span node.
    pub fn spans(&self) -> Vec<&SpanSnap> {
        let mut out = Vec::new();
        let mut stack: Vec<&SpanSnap> = self.spans.iter().collect();
        while let Some(s) = stack.pop() {
            out.push(s);
            stack.extend(s.children.iter());
        }
        out
    }

    /// Total time across every span node with this name, regardless of
    /// parent (phase attribution for bench reports).
    pub fn span_total_ns_by_name(&self, name: &str) -> u64 {
        self.spans()
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_ns)
            .sum()
    }

    /// Entry count across every span node with this name.
    pub fn span_count_by_name(&self, name: &str) -> u64 {
        self.spans()
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.count)
            .sum()
    }

    /// Every distinct span name in the tree.
    pub fn span_names(&self) -> BTreeSet<String> {
        self.spans().iter().map(|s| s.name.clone()).collect()
    }

    /// Every distinct counter name.
    pub fn counter_names(&self) -> BTreeSet<String> {
        self.counters.iter().map(|c| c.name.clone()).collect()
    }

    /// Every distinct histogram name.
    pub fn histogram_names(&self) -> BTreeSet<String> {
        self.histograms.iter().map(|h| h.name.clone()).collect()
    }

    /// Serialize to a single-line JSON document (shape in module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_span_json(&mut out, s);
        }
        out.push_str("],\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, &c.name);
            let _ = write!(out, ":{}", c.value);
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, &h.name);
            out.push_str(":{\"bounds\":");
            push_json_u64_array(&mut out, h.bounds.iter().copied());
            out.push_str(",\"counts\":");
            push_json_u64_array(&mut out, h.counts.iter().copied());
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                h.count, h.sum, h.min, h.max
            );
        }
        out.push_str("}}");
        out
    }

    /// Render a human-readable report: indented span tree with per-node
    /// share of parent, then counters, then histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("spans (count, total, share of parent):\n");
        for s in &self.spans {
            render_span(&mut out, s, 0, s.total_ns);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<32} {}", c.name, c.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / max):\n");
            for h in &self.histograms {
                let mean = h.sum.checked_div(h.count).unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:<32} {:>8} / {} / {}",
                    h.name,
                    h.count,
                    fmt_value(h.bounds, mean),
                    fmt_value(h.bounds, h.max)
                );
            }
        }
        out
    }
}

fn write_span_json(out: &mut String, s: &SpanSnap) {
    out.push_str("{\"name\":");
    push_json_string(out, &s.name);
    let _ = write!(
        out,
        ",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"children\":[",
        s.count, s.total_ns, s.min_ns, s.max_ns
    );
    for (i, c) in s.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span_json(out, c);
    }
    out.push_str("]}");
}

fn render_span(out: &mut String, s: &SpanSnap, depth: usize, parent_total: u64) {
    let share = if parent_total == 0 {
        0.0
    } else {
        100.0 * s.total_ns as f64 / parent_total as f64
    };
    let _ = writeln!(
        out,
        "  {:indent$}{:<width$} {:>6}x {:>12} {:>5.1}%",
        "",
        s.name,
        s.count,
        fmt_ns(s.total_ns),
        share,
        indent = depth * 2,
        width = 34usize.saturating_sub(depth * 2),
    );
    for c in &s.children {
        render_span(out, c, depth + 1, s.total_ns);
    }
}

/// Pretty-print nanoseconds.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Histogram values are latencies when bucketed by the latency bounds,
/// plain magnitudes otherwise.
fn fmt_value(bounds: &[u64], v: u64) -> String {
    if bounds == crate::LATENCY_BOUNDS_NS {
        fmt_ns(v)
    } else {
        v.to_string()
    }
}

fn push_json_u64_array<I: Iterator<Item = u64>>(out: &mut String, values: I) {
    out.push('[');
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Minimal JSON string escaping (names are code identifiers, but stay
/// correct for arbitrary input).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
