//! Interactive formulation mode — the paper's visual query interface in
//! terminal form.
//!
//! The GUI of the paper (Fig. 2) lets a user drop labeled nodes, draw edges
//! one at a time, watch the fragment status evolve, accept deletion
//! suggestions, opt into similarity search and press Run. `prague
//! interactive` is the same loop over stdin:
//!
//! ```text
//! > node C          # drop a node; prints its id
//! > node S
//! > edge 0 1        # New action: SPIG built, candidates refreshed
//! > delete 1        # Modify action (accepts the edge label ℓ)
//! > similar         # SimQuery action
//! > suggest         # show the system's deletion suggestion
//! > run             # Run action: results + SRT
//! > log             # the Figure-3 step table so far
//! > quit
//! ```
//!
//! The loop is written against generic `BufRead`/`Write` so tests drive it
//! with scripted input.

use prague::{PragueSystem, QueryResults, Session, StepStatus};
use std::io::{BufRead, Write};

/// Help text printed by `help`.
const REPL_HELP: &str = "\
commands:
  node <LABEL>     drop a node with the given label (name or numeric id)
  edge <u> <v>     draw an edge between canvas nodes u and v
  delete <l>       delete edge e<l> (query must stay connected)
  relabel <n> <L>  relabel canvas node n to label L
  similar          switch to similarity search (sigma set at startup)
  suggest          show which edge deletion would restore most candidates
  candidates       show the current candidate count
  log              print the formulation trace so far
  stats            print the observability snapshot (needs --stats)
  run              execute the query
  help             this text
  quit             leave
";

/// Run the interactive loop. Returns the number of commands processed.
pub fn run_repl<R: BufRead, W: Write>(
    system: &PragueSystem,
    sigma: usize,
    input: R,
    out: &mut W,
) -> std::io::Result<usize> {
    let mut session = system.session(sigma);
    let mut processed = 0usize;
    writeln!(
        out,
        "prague interactive — |D| = {}, σ = {} (type 'help')",
        system.db().len(),
        sigma
    )?;
    for line in input.lines() {
        let line = line?;
        let mut tokens = line.split_whitespace();
        let Some(cmd) = tokens.next() else { continue };
        processed += 1;
        match cmd {
            "quit" | "exit" | "q" => break,
            "help" => write!(out, "{REPL_HELP}")?,
            "node" => match tokens.next() {
                Some(label) => match resolve_label(system, label) {
                    Some(l) => {
                        let id = session.add_node(l);
                        writeln!(out, "node {id} ({label})")?;
                    }
                    None => writeln!(out, "error: unknown label {label:?}")?,
                },
                None => writeln!(out, "usage: node <LABEL>")?,
            },
            "edge" => {
                let (Some(u), Some(v)) = (parse(tokens.next()), parse(tokens.next())) else {
                    writeln!(out, "usage: edge <u> <v>")?;
                    continue;
                };
                match session.add_edge(u, v) {
                    Ok(step) => {
                        writeln!(
                            out,
                            "e{}: {} — {} candidates ({:?})",
                            step.edge,
                            status_name(step.status),
                            step.candidate_count,
                            step.total_time()
                        )?;
                        if let Some(s) = &step.suggestion {
                            writeln!(
                                out,
                                "  no exact match; deleting e{} would restore {} candidates \
                                 (or type 'similar')",
                                s.edge,
                                s.candidates.len()
                            )?;
                        }
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            "delete" => {
                let Some(l) = parse(tokens.next()) else {
                    writeln!(out, "usage: delete <edge label>")?;
                    continue;
                };
                match session.delete_edge(l) {
                    Ok(o) => writeln!(
                        out,
                        "deleted e{}: {} candidates ({:?})",
                        o.edge, o.candidate_count, o.modify_time
                    )?,
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            "relabel" => {
                let (Some(n), Some(label)) = (parse(tokens.next()), tokens.next()) else {
                    writeln!(out, "usage: relabel <node> <LABEL>")?;
                    continue;
                };
                let Some(l) = resolve_label(system, label) else {
                    writeln!(out, "error: unknown label {label:?}")?;
                    continue;
                };
                match session.relabel_node(n, l) {
                    Ok(edges) => {
                        writeln!(out, "relabeled node {n}; re-drew {} edge(s)", edges.len())?
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            "similar" => match session.choose_similarity() {
                Ok(n) => writeln!(out, "similarity mode: {n} candidates")?,
                Err(e) => writeln!(out, "error: {e}")?,
            },
            "suggest" => match session.suggest_deletion() {
                Ok(Some(s)) => writeln!(
                    out,
                    "delete e{} → {} candidates",
                    s.edge,
                    s.candidates.len()
                )?,
                Ok(None) => writeln!(out, "no deletable edge")?,
                Err(e) => writeln!(out, "error: {e}")?,
            },
            "candidates" => {
                let n = if session.is_similarity() {
                    session
                        .similarity_candidates()
                        .map_or(0, |c| c.distinct_candidates())
                } else {
                    session.exact_candidates().len()
                };
                writeln!(out, "{n} candidates")?;
            }
            "log" => write!(out, "{}", session.log().render())?,
            "stats" => match session.obs().snapshot() {
                Some(snap) => write!(out, "{}", snap.render())?,
                None => writeln!(out, "observability disabled (start with --stats)")?,
            },
            "run" => match session.run() {
                Ok(o) => print_results(out, &o.results, o.srt, &session)?,
                Err(e) => writeln!(out, "error: {e}")?,
            },
            other => writeln!(out, "unknown command {other:?} (try 'help')")?,
        }
    }
    Ok(processed)
}

fn parse(token: Option<&str>) -> Option<u32> {
    token.and_then(|t| {
        // accept both "3" and "e3"
        t.strip_prefix('e').unwrap_or(t).parse().ok()
    })
}

fn resolve_label(system: &PragueSystem, token: &str) -> Option<prague_graph::Label> {
    system
        .labels()
        .get(token)
        .or_else(|| token.parse::<u16>().ok().map(prague_graph::Label))
}

fn status_name(s: StepStatus) -> &'static str {
    match s {
        StepStatus::Frequent => "frequent",
        StepStatus::Infrequent => "infrequent",
        StepStatus::Similar => "similar",
    }
}

fn print_results<W: Write>(
    out: &mut W,
    results: &QueryResults,
    srt: std::time::Duration,
    session: &Session<'_>,
) -> std::io::Result<()> {
    match results {
        QueryResults::Exact(ids) => {
            writeln!(out, "{} exact matches (SRT {srt:?})", ids.len())?;
            for id in ids.iter().take(10) {
                writeln!(out, "  graph {id}")?;
            }
            if ids.len() > 10 {
                writeln!(out, "  … and {} more", ids.len() - 10)?;
            }
        }
        QueryResults::Similar(r) => {
            writeln!(
                out,
                "{} approximate matches within σ = {} (SRT {srt:?})",
                r.matches.len(),
                session.sigma
            )?;
            for m in r.matches.iter().take(10) {
                writeln!(out, "  graph {:>6}  distance {}", m.graph_id, m.distance)?;
            }
            if r.matches.len() > 10 {
                writeln!(out, "  … and {} more", r.matches.len() - 10)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prague::SystemParams;
    use prague_graph::{Graph, GraphDb, Label, LabelTable};

    fn chain(labels: &[u16]) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(Label(l))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn system() -> PragueSystem {
        let mut db = GraphDb::new();
        for _ in 0..5 {
            db.push(chain(&[0, 1, 0]));
        }
        db.push(chain(&[0, 1, 2]));
        PragueSystem::build_with_labels(
            db,
            LabelTable::from_names(["C", "S", "O"]),
            SystemParams {
                alpha: 0.3,
                beta: 2,
                max_fragment_edges: 4,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn drive(script: &str) -> String {
        let system = system();
        let mut out = Vec::new();
        run_repl(&system, 1, script.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn scripted_exact_session() {
        let out = drive("node C\nnode S\nnode C\nedge 0 1\nedge 1 2\nrun\nquit\n");
        assert!(out.contains("node 0 (C)"));
        assert!(out.contains("e1: frequent"));
        assert!(out.contains("e2: frequent"));
        assert!(out.contains("5 exact matches"));
    }

    #[test]
    fn similarity_and_log() {
        let out = drive(
            "node C\nnode S\nnode S\nedge 0 1\nedge 1 2\nsimilar\ncandidates\nrun\nlog\nquit\n",
        );
        // S-S never occurs: second edge goes similar and suggests
        assert!(out.contains("e2: similar"));
        assert!(out.contains("deleting e2 would restore"));
        assert!(out.contains("similarity mode"));
        assert!(out.contains("approximate matches"));
        assert!(out.contains("draw e1"));
        assert!(out.contains("RUN"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out =
            drive("node Xx\nnode C\nedge 0 9\nedge zero one\ndelete 7\nfrobnicate\nrun\nquit\n");
        assert!(out.contains("unknown label \"Xx\""));
        assert!(out.contains("error:"));
        assert!(out.contains("usage: edge"));
        assert!(out.contains("unknown command"));
        // run on an empty query also errors gracefully
        assert!(out.contains("cannot run an empty query"));
    }

    #[test]
    fn delete_flow() {
        let out = drive(
            "node C\nnode S\nnode C\nedge 0 1\nedge 1 2\nsuggest\ndelete e2\ncandidates\nquit\n",
        );
        assert!(out.contains("deleted e2"));
        assert!(out.contains("candidates"));
    }

    #[test]
    fn numeric_labels_accepted() {
        let out = drive("node 0\nnode 1\nedge 0 1\nrun\nquit\n");
        assert!(out.contains("exact matches"));
    }

    #[test]
    fn stats_command_reports_disabled_without_obs() {
        let out = drive("stats\nquit\n");
        assert!(out.contains("observability disabled"));
    }

    #[test]
    fn stats_command_prints_snapshot_with_obs() {
        let mut system = system();
        system.set_obs(prague_obs::Obs::enabled());
        let mut out = Vec::new();
        run_repl(
            &system,
            1,
            "node C\nnode S\nedge 0 1\nrun\nstats\nquit\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("session.add_edge"), "span tree shown: {out}");
        assert!(out.contains("session.run"));
    }
}
