//! Command implementations.

use crate::args::{
    BuildArgs, GenerateArgs, InteractiveArgs, QueryArgs, ServeArgs, StatsArgs, StatsMode,
};
use prague::{persist, PragueSystem, QueryResults, SystemParams};
use prague_datagen::{GraphGenConfig, MoleculeConfig};
use prague_graph::io::{read_lg_file, write_lg_file};
use prague_graph::{Graph, LabelTable};
use prague_mining::mine_classified;
use prague_obs::Obs;
use prague_server::{Server, ServerConfig, SessionManager, SystemClock};

/// `prague generate`: write a synthetic dataset in `.lg` format.
pub fn generate(args: &GenerateArgs) -> Result<(), String> {
    let (db, labels) = match args.kind.as_str() {
        "molecules" => {
            let ds = prague_datagen::molecules_generate(&MoleculeConfig {
                graphs: args.graphs,
                seed: args.seed,
                ..Default::default()
            });
            (ds.db, ds.labels)
        }
        "synthetic" => prague_datagen::graphgen_generate(&GraphGenConfig {
            graphs: args.graphs,
            seed: args.seed,
            label_count: args.labels,
            ..Default::default()
        }),
        other => {
            return Err(format!(
                "unknown dataset kind {other:?} (molecules|synthetic)"
            ))
        }
    };
    write_lg_file(&args.out, &db, &labels).map_err(|e| e.to_string())?;
    println!(
        "wrote {} graphs (avg {:.1} edges, {} labels) to {}",
        db.len(),
        db.avg_edges(),
        labels.len(),
        args.out.display()
    );
    Ok(())
}

/// `prague build`: mine a dataset and save the catalog.
pub fn build(args: &BuildArgs) -> Result<(), String> {
    let mut labels = LabelTable::new();
    let db = read_lg_file(&args.data, &mut labels).map_err(|e| e.to_string())?;
    if db.is_empty() {
        return Err("dataset is empty".into());
    }
    println!(
        "mining {} graphs at α = {} (fragments ≤ {} edges)…",
        db.len(),
        args.alpha,
        args.max_edges
    );
    let t0 = std::time::Instant::now();
    let mining = mine_classified(&db, args.alpha, args.max_edges);
    println!(
        "  {} frequent fragments, {} DIFs ({} NIFs seen) in {:.1?}",
        mining.frequent.len(),
        mining.difs.len(),
        mining.nif_count,
        t0.elapsed()
    );
    persist::save_catalog(&args.out, &db, &labels, &mining).map_err(|e| e.to_string())?;
    println!("catalog saved to {}", args.out.display());
    Ok(())
}

/// `prague stats`: print catalog statistics.
pub fn stats(args: &StatsArgs) -> Result<(), String> {
    let (db, labels, mining) = persist::load_catalog(&args.catalog).map_err(|e| e.to_string())?;
    println!("catalog {}", args.catalog.display());
    println!("  graphs: {}", db.len());
    println!("  total edges: {}", db.total_edges());
    println!("  avg edges/graph: {:.2}", db.avg_edges());
    println!("  labels: {}", labels.len());
    println!("  frequent fragments: {}", mining.frequent.len());
    println!("  DIFs: {}", mining.difs.len());
    // size histogram
    let mut hist: Vec<usize> = Vec::new();
    for f in &mining.frequent {
        if hist.len() <= f.size() {
            hist.resize(f.size() + 1, 0);
        }
        hist[f.size()] += 1;
    }
    for (size, count) in hist.iter().enumerate().skip(1) {
        if *count > 0 {
            println!("    |f| = {size}: {count} frequent fragments");
        }
    }
    Ok(())
}

/// Order a query graph's edges so every prefix is connected (the GUI
/// guarantee the session requires).
#[allow(clippy::needless_range_loop)]
pub fn connected_order(q: &Graph) -> Vec<usize> {
    let n = q.edge_count();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut wired: std::collections::HashSet<u32> = std::collections::HashSet::new();
    while order.len() < n {
        let mut advanced = false;
        for e in 0..n {
            if used[e] {
                continue;
            }
            let edge = q.edge(e as u32);
            if order.is_empty() || wired.contains(&edge.u) || wired.contains(&edge.v) {
                used[e] = true;
                wired.insert(edge.u);
                wired.insert(edge.v);
                order.push(e);
                advanced = true;
            }
        }
        if !advanced {
            break; // disconnected query: remaining edges start a new component
        }
    }
    // append any disconnected leftovers so the caller sees them fail cleanly
    for e in 0..n {
        if !used[e] {
            order.push(e);
        }
    }
    order
}

/// Print an observability snapshot in the requested mode (no-op when the
/// handle is disabled or the mode is `Off`).
fn print_stats(system: &PragueSystem, mode: StatsMode) {
    let Some(snap) = system.obs().snapshot() else {
        return;
    };
    match mode {
        StatsMode::Off => {}
        StatsMode::Text => print!("{}", snap.render()),
        StatsMode::Json => println!("{}", snap.to_json()),
    }
}

/// `prague query` (alias `prague run`): load a catalog, rebuild the
/// indexes, replay the query and print the results — plus, with
/// `--stats[=json]`, the observability snapshot of the whole replay.
pub fn query(args: &QueryArgs) -> Result<(), String> {
    let (db, labels, mining) = persist::load_catalog(&args.catalog).map_err(|e| e.to_string())?;
    let alpha_hint = mining.frequent.len(); // informational only
    let _ = alpha_hint;
    let max_edges = mining.frequent.iter().map(|f| f.size()).max().unwrap_or(1);
    let mut system = PragueSystem::from_mining_result(
        db,
        labels.clone(),
        mining,
        SystemParams {
            alpha: 0.0, // recorded in the catalog's mining pass; unused here
            beta: args.beta,
            max_fragment_edges: max_edges,
            shards: args.shards,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    system.warm().map_err(|e| e.to_string())?;
    system.set_threads(args.threads);
    if args.stats.is_on() {
        // attach after warm() so the snapshot covers only the session
        system.set_obs(Obs::enabled());
    }

    // the query file's labels must resolve against the catalog's table
    let mut qlabels = labels.clone();
    let qdb = read_lg_file(&args.query, &mut qlabels).map_err(|e| e.to_string())?;
    if qlabels.len() > labels.len() {
        return Err("query uses labels that do not occur in the catalog's dataset".into());
    }
    let Some((_, q)) = qdb.iter().next() else {
        return Err("query file contains no graph".into());
    };
    if q.edge_count() > max_edges {
        eprintln!(
            "note: query has {} edges but the catalog was mined to {max_edges}; \
             deep levels will be unindexed (still correct, more verification)",
            q.edge_count()
        );
    }

    let mut session = system.session(args.sigma);
    let nodes: Vec<_> = q.labels().iter().map(|&l| session.add_node(l)).collect();
    for &e in &connected_order(q) {
        let edge = q.edge(e as u32);
        session
            .add_edge(nodes[edge.u as usize], nodes[edge.v as usize])
            .map_err(|e| e.to_string())?;
    }
    if args.similar {
        session.choose_similarity().map_err(|e| e.to_string())?;
    }
    let outcome = session.run().map_err(|e| e.to_string())?;
    if args.trace {
        println!("{}", session.log().render());
    }
    match outcome.results {
        QueryResults::Exact(ids) => {
            println!("{} exact matches (SRT {:?})", ids.len(), outcome.srt);
            for id in ids.iter().take(20) {
                println!("  graph {id}");
            }
            if ids.len() > 20 {
                println!("  … and {} more", ids.len() - 20);
            }
        }
        QueryResults::Similar(r) => {
            println!(
                "{} approximate matches within σ = {} (SRT {:?})",
                r.matches.len(),
                args.sigma,
                outcome.srt
            );
            for m in r.matches.iter().take(20) {
                println!("  graph {:>6}  distance {}", m.graph_id, m.distance);
            }
            if r.matches.len() > 20 {
                println!("  … and {} more", r.matches.len() - 20);
            }
        }
    }
    print_stats(&system, args.stats);
    Ok(())
}

/// `prague interactive`: formulate a query on stdin over a loaded catalog.
/// With `--stats[=json]` the observability snapshot is printed on exit (and
/// available mid-session via the `stats` REPL command).
pub fn interactive(args: &InteractiveArgs) -> Result<(), String> {
    let (db, labels, mining) = persist::load_catalog(&args.catalog).map_err(|e| e.to_string())?;
    let max_edges = mining.frequent.iter().map(|f| f.size()).max().unwrap_or(1);
    let mut system = PragueSystem::from_mining_result(
        db,
        labels,
        mining,
        SystemParams {
            alpha: 0.0,
            beta: args.beta,
            max_fragment_edges: max_edges,
            shards: args.shards,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    system.warm().map_err(|e| e.to_string())?;
    system.set_threads(args.threads);
    if args.stats.is_on() {
        system.set_obs(Obs::enabled());
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    crate::interactive::run_repl(&system, args.sigma, stdin.lock(), &mut stdout)
        .map_err(|e| e.to_string())?;
    print_stats(&system, args.stats);
    Ok(())
}

/// `prague serve`: host the multi-session query service over a loaded
/// catalog. Runs until stdin closes (so `prague serve … < /dev/null`
/// starts, prints the bound address, and exits cleanly — the CI smoke),
/// then shuts down: sessions closed, speculative verification cancelled,
/// connection threads joined.
pub fn serve(args: &ServeArgs) -> Result<(), String> {
    serve_until(args, std::io::stdin().lock(), |addr| {
        println!("listening on {addr}");
    })
}

/// The testable core of [`serve`]: the service runs until `control`
/// (stdin in production) reaches EOF; `on_ready` observes the bound
/// address before any connection is accepted.
pub fn serve_until<R: std::io::BufRead>(
    args: &ServeArgs,
    control: R,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<(), String> {
    let (db, labels, mining) = persist::load_catalog(&args.catalog).map_err(|e| e.to_string())?;
    let max_edges = mining.frequent.iter().map(|f| f.size()).max().unwrap_or(1);
    let mut system = PragueSystem::from_mining_result(
        db,
        labels,
        mining,
        SystemParams {
            alpha: 0.0,
            beta: args.beta,
            max_fragment_edges: max_edges,
            shards: args.shards,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    system.warm().map_err(|e| e.to_string())?;
    system.set_threads(args.threads);
    if args.stats.is_on() {
        system.set_obs(Obs::enabled());
    }
    let system = std::sync::Arc::new(system);
    let manager = std::sync::Arc::new(SessionManager::new(
        std::sync::Arc::clone(&system),
        ServerConfig {
            default_sigma: args.sigma,
            max_sessions: args.max_sessions,
            max_conns: args.max_conns,
            idle_timeout: std::time::Duration::from_secs(args.idle_secs),
            ..ServerConfig::default()
        },
        std::sync::Arc::new(SystemClock::new()),
    ));
    let server = Server::bind(&args.addr, std::sync::Arc::clone(&manager))
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    on_ready(server.local_addr());
    // Park on the control stream; EOF (or a read error) is the shutdown
    // signal. Lines typed here are ignored — the protocol runs over TCP.
    for line in control.lines() {
        if line.is_err() {
            break;
        }
    }
    server.shutdown();
    let stats = manager.lifecycle_stats();
    eprintln!(
        "shutdown: {} opened, {} closed, {} expired, {} evicted",
        stats.opened, stats.closed, stats.expired, stats.evicted
    );
    print_stats(&system, args.stats);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("prague-cli-{}-{name}", std::process::id()))
    }

    #[test]
    fn end_to_end_generate_build_stats_query() {
        let data = temp("d.lg");
        let catalog = temp("c.prgc");
        let qfile = temp("q.lg");

        generate(&GenerateArgs {
            kind: "molecules".into(),
            graphs: 60,
            out: data.clone(),
            seed: 5,
            labels: 20,
        })
        .unwrap();

        build(&BuildArgs {
            data: data.clone(),
            out: catalog.clone(),
            alpha: 0.2,
            max_edges: 5,
        })
        .unwrap();

        stats(&StatsArgs {
            catalog: catalog.clone(),
        })
        .unwrap();

        // C-C query (carbon dominates the generator)
        std::fs::write(&qfile, "t # 0\nv 0 C\nv 1 C\ne 0 1\n").unwrap();
        query(&QueryArgs {
            catalog: catalog.clone(),
            query: qfile.clone(),
            sigma: 1,
            beta: 2,
            similar: false,
            trace: true,
            threads: 2,
            shards: 2,
            stats: StatsMode::Json,
        })
        .unwrap();

        for p in [data, catalog, qfile] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_answers_frames_and_shuts_down_on_control_eof() {
        use std::io::{BufRead, BufReader, Write};

        let data = temp("srv-d.lg");
        let catalog = temp("srv-c.prgc");
        generate(&GenerateArgs {
            kind: "molecules".into(),
            graphs: 60,
            out: data.clone(),
            seed: 5,
            labels: 20,
        })
        .unwrap();
        build(&BuildArgs {
            data: data.clone(),
            out: catalog.clone(),
            alpha: 0.2,
            max_edges: 3,
        })
        .unwrap();

        let args = ServeArgs {
            catalog: catalog.clone(),
            addr: "127.0.0.1:0".into(),
            sigma: 2,
            beta: 2,
            threads: 2,
            shards: 2,
            max_sessions: 16,
            max_conns: 16,
            idle_secs: 60,
            stats: StatsMode::Off,
        };
        // `on_ready` runs while the server is live; the empty control
        // stream then shuts it down as soon as the closure returns.
        serve_until(&args, std::io::empty(), |addr| {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut ask = |frame: &str| {
                writeln!(stream, "{frame}").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line
            };
            assert!(ask("{\"op\":\"ping\"}").contains("\"pong\":true"));
            let open = ask("{\"op\":\"open\"}");
            assert!(open.contains("\"session\":1"), "{open}");
            for _ in 0..3 {
                let n = ask("{\"op\":\"node\",\"session\":1,\"name\":\"C\"}");
                assert!(n.contains("\"ok\":true"), "{n}");
            }
            for (u, v) in [(0, 1), (1, 2)] {
                let e = ask(&format!(
                    "{{\"op\":\"edge\",\"session\":1,\"u\":{u},\"v\":{v}}}"
                ));
                assert!(e.contains("\"status\":"), "{e}");
            }
            let run = ask("{\"op\":\"run\",\"session\":1}");
            assert!(run.contains("\"kind\":"), "{run}");
            assert!(ask("{\"op\":\"stats\"}").contains("\"sessions\":1"));
            assert!(ask("{\"op\":\"close\",\"session\":1}").contains("\"closed\":true"));
            assert!(ask("garbage").contains("bad_json"));
        })
        .unwrap();

        for p in [data, catalog] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn connected_order_makes_prefixes_connected() {
        let mut g = Graph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(prague_graph::Label(0))).collect();
        // edges given in a disconnected-prefix order
        g.add_edge(n[2], n[3]).unwrap();
        g.add_edge(n[0], n[1]).unwrap();
        g.add_edge(n[1], n[2]).unwrap();
        let order = connected_order(&g);
        let mut wired = std::collections::HashSet::new();
        for (i, &e) in order.iter().enumerate() {
            let edge = g.edge(e as u32);
            if i > 0 {
                assert!(wired.contains(&edge.u) || wired.contains(&edge.v));
            }
            wired.insert(edge.u);
            wired.insert(edge.v);
        }
    }

    #[test]
    fn query_rejects_unknown_labels() {
        let data = temp("d2.lg");
        let catalog = temp("c2.prgc");
        let qfile = temp("q2.lg");
        generate(&GenerateArgs {
            kind: "synthetic".into(),
            graphs: 30,
            out: data.clone(),
            seed: 9,
            labels: 3,
        })
        .unwrap();
        build(&BuildArgs {
            data: data.clone(),
            out: catalog.clone(),
            alpha: 0.3,
            max_edges: 3,
        })
        .unwrap();
        std::fs::write(&qfile, "t # 0\nv 0 Xx\nv 1 Yy\ne 0 1\n").unwrap();
        let err = query(&QueryArgs {
            catalog: catalog.clone(),
            query: qfile.clone(),
            sigma: 1,
            beta: 2,
            similar: false,
            trace: false,
            threads: 1,
            shards: 1,
            stats: StatsMode::Off,
        })
        .unwrap_err();
        assert!(err.contains("labels"));
        for p in [data, catalog, qfile] {
            std::fs::remove_file(p).ok();
        }
    }
}
