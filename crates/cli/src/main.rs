//! The `prague` binary.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match prague_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = prague_cli::run(command) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
