//! # prague-cli
//!
//! The `prague` command-line tool:
//!
//! ```text
//! prague generate --kind molecules --graphs 2000 --out corpus.lg
//! prague build    --data corpus.lg --alpha 0.1 --beta 8 --out corpus.prgc
//! prague stats    --catalog corpus.prgc
//! prague query    --catalog corpus.prgc --query q.lg --sigma 2
//! ```
//!
//! `query` replays the query file's edges as a visual formulation session
//! (re-ordered so every prefix is connected, as the GUI guarantees) and
//! prints the step table, the final results and the SRT — falling back to
//! similarity search when no exact match exists, exactly like the GUI flow.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod interactive;

pub use args::{parse_args, Command, ParseError};

/// Run a parsed command; returns a human-readable error on failure.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Generate(g) => commands::generate(&g),
        Command::Build(b) => commands::build(&b),
        Command::Stats(s) => commands::stats(&s),
        Command::Query(q) => commands::query(&q),
        Command::Interactive(i) => commands::interactive(&i),
        Command::Serve(s) => commands::serve(&s),
        Command::Help => {
            println!("{}", args::USAGE);
            Ok(())
        }
    }
}
