//! Hand-rolled argument parsing (no external CLI dependency).

use std::path::PathBuf;

/// Usage text.
pub const USAGE: &str = "\
prague — practical visual subgraph query blending (PRAGUE, ICDE 2012)

USAGE:
  prague generate --kind <molecules|synthetic> --graphs <N> --out <FILE.lg>
                  [--seed <S>] [--labels <L>]
  prague build    --data <FILE.lg> --out <FILE.prgc>
                  [--alpha <A=0.1>] [--max-edges <M=10>]
  prague stats    --catalog <FILE.prgc>
  prague query    --catalog <FILE.prgc> --query <FILE.lg>
                  [--sigma <K=2>] [--beta <B=8>] [--similar] [--trace]
                  [--threads <N=1>] [--shards <N=1>] [--stats[=json]]
  prague run      alias of `query`
  prague interactive --catalog <FILE.prgc> [--sigma <K=2>] [--beta <B=8>]
                  [--threads <N=1>] [--shards <N=1>] [--stats[=json]]
  prague serve    --catalog <FILE.prgc> [--addr <HOST:PORT=127.0.0.1:7474>]
                  [--sigma <K=2>] [--beta <B=8>] [--threads <N=1>]
                  [--shards <N=1>] [--max-sessions <N=1024>]
                  [--max-conns <N=1024>] [--idle-secs <S=300>]
                  [--stats[=json]]
  prague help

`serve` hosts the multi-session query service: one JSON frame per line
over TCP (frame reference in README.md § \"The query service\"). It runs
until stdin is closed, then shuts down cleanly (sessions closed,
connection threads joined); with `--stats` the observability snapshot —
including the `srv.*` service metrics — is printed on exit.

`--stats` prints the observability snapshot (span tree, counters,
histograms; see ARCHITECTURE.md § Performance model) after the query;
`--stats=json` emits it as a single machine-readable JSON object.

`--threads N` verifies candidates on N pool workers and starts
verification speculatively during formulation think time; `--threads 1`
(the default) is the original sequential path. Results are identical
either way. The default can also be set via the PRAGUE_THREADS
environment variable (the flag wins).

`--shards N` partitions the database and the action-aware indexes
across N shards by consistent hash of the graph id (see
ARCHITECTURE.md § \"Sharded index\"); `--shards 1` (the default) is the
classic single-index layout. Query answers are byte-identical either
way. The default can also be set via the PRAGUE_SHARDS environment
variable (the flag wins).
";

/// Parsed `generate` options.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// `molecules` or `synthetic`.
    pub kind: String,
    /// Number of graphs.
    pub graphs: usize,
    /// Output `.lg` path.
    pub out: PathBuf,
    /// RNG seed.
    pub seed: u64,
    /// Label-alphabet size (synthetic only).
    pub labels: u16,
}

/// Parsed `build` options.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildArgs {
    /// Input `.lg` dataset.
    pub data: PathBuf,
    /// Output catalog path.
    pub out: PathBuf,
    /// Minimum support ratio α.
    pub alpha: f64,
    /// Mining size cap.
    pub max_edges: usize,
}

/// Parsed `stats` options.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsArgs {
    /// Catalog path.
    pub catalog: PathBuf,
}

/// How observability statistics should be reported (`--stats[=json]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// No instrumentation (the default): zero recording overhead.
    #[default]
    Off,
    /// Human-readable span tree + counters after the command.
    Text,
    /// One machine-readable JSON object after the command.
    Json,
}

impl StatsMode {
    /// Whether any recording was requested.
    pub fn is_on(self) -> bool {
        self != StatsMode::Off
    }
}

/// Parsed `query` options.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// Catalog path.
    pub catalog: PathBuf,
    /// Query `.lg` file (first graph used).
    pub query: PathBuf,
    /// Distance threshold σ.
    pub sigma: usize,
    /// Fragment size threshold β for the rebuilt index.
    pub beta: usize,
    /// Force similarity mode even when exact matches exist.
    pub similar: bool,
    /// Print the per-step formulation trace.
    pub trace: bool,
    /// Verification worker threads (1 = sequential).
    pub threads: usize,
    /// Index shard count (1 = unsharded).
    pub shards: usize,
    /// Observability reporting mode.
    pub stats: StatsMode,
}

/// Parsed `interactive` options.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractiveArgs {
    /// Catalog path.
    pub catalog: PathBuf,
    /// Distance threshold σ.
    pub sigma: usize,
    /// Fragment size threshold β for the rebuilt index.
    pub beta: usize,
    /// Verification worker threads (1 = sequential).
    pub threads: usize,
    /// Index shard count (1 = unsharded).
    pub shards: usize,
    /// Observability reporting mode.
    pub stats: StatsMode,
}

/// Parsed `serve` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Catalog path.
    pub catalog: PathBuf,
    /// Listen address (`HOST:PORT`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Default distance threshold σ for sessions that don't override it.
    pub sigma: usize,
    /// Fragment size threshold β for the rebuilt index.
    pub beta: usize,
    /// Verification worker threads shared by all sessions.
    pub threads: usize,
    /// Index shard count (1 = unsharded).
    pub shards: usize,
    /// Hard cap on concurrently live sessions.
    pub max_sessions: usize,
    /// Hard cap on concurrently served TCP connections.
    pub max_conns: usize,
    /// Idle seconds before a session is expired.
    pub idle_secs: u64,
    /// Observability reporting mode.
    pub stats: StatsMode,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset.
    Generate(GenerateArgs),
    /// Mine + save a catalog.
    Build(BuildArgs),
    /// Print catalog statistics.
    Stats(StatsArgs),
    /// Run a query.
    Query(QueryArgs),
    /// Formulate a query interactively on stdin.
    Interactive(InteractiveArgs),
    /// Host the multi-session TCP query service.
    Serve(ServeArgs),
    /// Print usage.
    Help,
}

/// Argument errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// No subcommand or an unknown one.
    UnknownCommand(String),
    /// A flag without its value, or an unknown flag.
    BadFlag(String),
    /// A value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// A required flag was not given.
    Missing(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownCommand(c) => write!(f, "unknown command {c:?}\n{USAGE}"),
            ParseError::BadFlag(x) => write!(f, "unknown or incomplete flag {x:?}"),
            ParseError::BadValue { flag, value } => {
                write!(f, "bad value {value:?} for {flag}")
            }
            ParseError::Missing(flag) => write!(f, "missing required flag {flag}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Split `args` (without the program name) into flag/value pairs and lone
/// switches.
fn flags(args: &[String]) -> Result<Vec<(String, Option<String>)>, ParseError> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") {
            return Err(ParseError::BadFlag(a.clone()));
        }
        // `--flag=value` binds the value inline (the only way to give a
        // value to a flag that is also valid as a bare switch, e.g.
        // `--stats=json`).
        if let Some((flag, value)) = a.split_once('=') {
            out.push((flag.to_string(), Some(value.to_string())));
            i += 1;
            continue;
        }
        let is_switch = matches!(a.as_str(), "--similar" | "--trace" | "--stats");
        if is_switch {
            out.push((a.clone(), None));
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| ParseError::BadFlag(a.clone()))?;
            out.push((a.clone(), Some(value.clone())));
            i += 2;
        }
    }
    Ok(out)
}

fn get<'a>(pairs: &'a [(String, Option<String>)], flag: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(f, _)| f == flag)
        .and_then(|(_, v)| v.as_deref())
}

fn has(pairs: &[(String, Option<String>)], flag: &str) -> bool {
    pairs.iter().any(|(f, _)| f == flag)
}

fn parse_num<T: std::str::FromStr>(
    pairs: &[(String, Option<String>)],
    flag: &str,
    default: T,
) -> Result<T, ParseError> {
    match get(pairs, flag) {
        Some(v) => v.parse().map_err(|_| ParseError::BadValue {
            flag: flag.to_string(),
            value: v.to_string(),
        }),
        None => Ok(default),
    }
}

fn required(pairs: &[(String, Option<String>)], flag: &'static str) -> Result<PathBuf, ParseError> {
    get(pairs, flag)
        .map(PathBuf::from)
        .ok_or(ParseError::Missing(flag))
}

/// The `--threads` default: the `PRAGUE_THREADS` environment variable if
/// set and parseable, else 1 (sequential). CI uses the variable to run
/// the whole suite under a fixed worker count.
fn default_threads() -> usize {
    std::env::var("PRAGUE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// The `--shards` default: the `PRAGUE_SHARDS` environment variable if
/// set and parseable, else 1 (unsharded). CI uses the variable to run
/// the whole suite under a fixed shard count.
fn default_shards() -> usize {
    std::env::var("PRAGUE_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// `--stats` → text, `--stats=json` → JSON, absent → off.
fn stats_mode(pairs: &[(String, Option<String>)]) -> Result<StatsMode, ParseError> {
    match pairs.iter().find(|(f, _)| f == "--stats") {
        None => Ok(StatsMode::Off),
        Some((_, None)) => Ok(StatsMode::Text),
        Some((_, Some(v))) if v == "text" => Ok(StatsMode::Text),
        Some((_, Some(v))) if v == "json" => Ok(StatsMode::Json),
        Some((_, Some(v))) => Err(ParseError::BadValue {
            flag: "--stats".to_string(),
            value: v.clone(),
        }),
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let pairs = flags(rest)?;
            Ok(Command::Generate(GenerateArgs {
                kind: get(&pairs, "--kind").unwrap_or("molecules").to_string(),
                graphs: parse_num(&pairs, "--graphs", 1000usize)?,
                out: required(&pairs, "--out")?,
                seed: parse_num(&pairs, "--seed", 42u64)?,
                labels: parse_num(&pairs, "--labels", 20u16)?,
            }))
        }
        "build" => {
            let pairs = flags(rest)?;
            Ok(Command::Build(BuildArgs {
                data: required(&pairs, "--data")?,
                out: required(&pairs, "--out")?,
                alpha: parse_num(&pairs, "--alpha", 0.1f64)?,
                max_edges: parse_num(&pairs, "--max-edges", 10usize)?,
            }))
        }
        "stats" => {
            let pairs = flags(rest)?;
            Ok(Command::Stats(StatsArgs {
                catalog: required(&pairs, "--catalog")?,
            }))
        }
        // `run` mirrors the paper's Run GUI action; it is an exact alias
        // of `query` so `prague run --stats=json …` reads naturally.
        "query" | "run" => {
            let pairs = flags(rest)?;
            Ok(Command::Query(QueryArgs {
                catalog: required(&pairs, "--catalog")?,
                query: required(&pairs, "--query")?,
                sigma: parse_num(&pairs, "--sigma", 2usize)?,
                beta: parse_num(&pairs, "--beta", 8usize)?,
                similar: has(&pairs, "--similar"),
                trace: has(&pairs, "--trace"),
                threads: parse_num(&pairs, "--threads", default_threads())?.max(1),
                shards: parse_num(&pairs, "--shards", default_shards())?.max(1),
                stats: stats_mode(&pairs)?,
            }))
        }
        "interactive" => {
            let pairs = flags(rest)?;
            Ok(Command::Interactive(InteractiveArgs {
                catalog: required(&pairs, "--catalog")?,
                sigma: parse_num(&pairs, "--sigma", 2usize)?,
                beta: parse_num(&pairs, "--beta", 8usize)?,
                threads: parse_num(&pairs, "--threads", default_threads())?.max(1),
                shards: parse_num(&pairs, "--shards", default_shards())?.max(1),
                stats: stats_mode(&pairs)?,
            }))
        }
        "serve" => {
            let pairs = flags(rest)?;
            Ok(Command::Serve(ServeArgs {
                catalog: required(&pairs, "--catalog")?,
                addr: get(&pairs, "--addr")
                    .unwrap_or("127.0.0.1:7474")
                    .to_string(),
                sigma: parse_num(&pairs, "--sigma", 2usize)?,
                beta: parse_num(&pairs, "--beta", 8usize)?,
                threads: parse_num(&pairs, "--threads", default_threads())?.max(1),
                shards: parse_num(&pairs, "--shards", default_shards())?.max(1),
                max_sessions: parse_num(&pairs, "--max-sessions", 1024usize)?.max(1),
                max_conns: parse_num(&pairs, "--max-conns", 1024usize)?.max(1),
                idle_secs: parse_num(&pairs, "--idle-secs", 300u64)?.max(1),
                stats: stats_mode(&pairs)?,
            }))
        }
        other => Err(ParseError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse_args(&argv(
            "generate --kind synthetic --graphs 500 --out d.lg --seed 7 --labels 5",
        ))
        .unwrap();
        match cmd {
            Command::Generate(g) => {
                assert_eq!(g.kind, "synthetic");
                assert_eq!(g.graphs, 500);
                assert_eq!(g.seed, 7);
                assert_eq!(g.labels, 5);
                assert_eq!(g.out, PathBuf::from("d.lg"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn defaults_applied() {
        let cmd = parse_args(&argv("build --data d.lg --out c.prgc")).unwrap();
        match cmd {
            Command::Build(b) => {
                assert!((b.alpha - 0.1).abs() < 1e-12);
                assert_eq!(b.max_edges, 10);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn switches_without_values() {
        let cmd = parse_args(&argv(
            "query --catalog c.prgc --query q.lg --similar --trace --sigma 3",
        ))
        .unwrap();
        match cmd {
            Command::Query(q) => {
                assert!(q.similar);
                assert!(q.trace);
                assert_eq!(q.sigma, 3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_serve() {
        let cmd = parse_args(&argv(
            "serve --catalog c.prgc --addr 0.0.0.0:7575 --sigma 3 --threads 4 \
             --max-sessions 64 --max-conns 16 --idle-secs 30 --stats=json",
        ))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.catalog, PathBuf::from("c.prgc"));
                assert_eq!(s.addr, "0.0.0.0:7575");
                assert_eq!(s.sigma, 3);
                assert_eq!(s.threads, 4);
                assert_eq!(s.max_sessions, 64);
                assert_eq!(s.max_conns, 16);
                assert_eq!(s.idle_secs, 30);
                assert_eq!(s.stats, StatsMode::Json);
            }
            _ => panic!(),
        }
        match parse_args(&argv("serve --catalog c.prgc")).unwrap() {
            Command::Serve(s) => {
                assert_eq!(s.addr, "127.0.0.1:7474");
                assert_eq!(s.max_sessions, 1024);
                assert_eq!(s.max_conns, 1024);
                assert_eq!(s.idle_secs, 300);
                assert_eq!(s.stats, StatsMode::Off);
            }
            _ => panic!(),
        }
        assert!(matches!(
            parse_args(&argv("serve")),
            Err(ParseError::Missing("--catalog"))
        ));
    }

    #[test]
    fn stats_switch_and_inline_value() {
        let cmd = parse_args(&argv("query --catalog c.prgc --query q.lg --stats")).unwrap();
        match cmd {
            Command::Query(q) => assert_eq!(q.stats, StatsMode::Text),
            _ => panic!(),
        }
        let cmd = parse_args(&argv("run --catalog c.prgc --query q.lg --stats=json")).unwrap();
        match cmd {
            Command::Query(q) => assert_eq!(q.stats, StatsMode::Json),
            _ => panic!(),
        }
        let cmd = parse_args(&argv("interactive --catalog c.prgc")).unwrap();
        match cmd {
            Command::Interactive(i) => assert_eq!(i.stats, StatsMode::Off),
            _ => panic!(),
        }
        assert!(matches!(
            parse_args(&argv("query --catalog c --query q --stats=xml")),
            Err(ParseError::BadValue { .. })
        ));
    }

    #[test]
    fn inline_values_work_for_ordinary_flags() {
        let cmd = parse_args(&argv("query --catalog=c.prgc --query=q.lg --sigma=4")).unwrap();
        match cmd {
            Command::Query(q) => {
                assert_eq!(q.catalog, PathBuf::from("c.prgc"));
                assert_eq!(q.sigma, 4);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn threads_flag_parses_and_clamps() {
        let cmd = parse_args(&argv("query --catalog c.prgc --query q.lg --threads 4")).unwrap();
        match cmd {
            Command::Query(q) => assert_eq!(q.threads, 4),
            _ => panic!(),
        }
        // 0 is clamped to sequential rather than rejected.
        let cmd = parse_args(&argv("interactive --catalog c.prgc --threads 0")).unwrap();
        match cmd {
            Command::Interactive(i) => assert_eq!(i.threads, 1),
            _ => panic!(),
        }
    }

    #[test]
    fn shards_flag_parses_and_clamps() {
        let cmd = parse_args(&argv("query --catalog c.prgc --query q.lg --shards 4")).unwrap();
        match cmd {
            Command::Query(q) => assert_eq!(q.shards, 4),
            _ => panic!(),
        }
        // 0 is clamped to unsharded rather than rejected.
        let cmd = parse_args(&argv("serve --catalog c.prgc --shards 0")).unwrap();
        match cmd {
            Command::Serve(s) => assert_eq!(s.shards, 1),
            _ => panic!(),
        }
        let cmd = parse_args(&argv("interactive --catalog c.prgc")).unwrap();
        match cmd {
            Command::Interactive(i) => assert_eq!(i.shards, 1),
            _ => panic!(),
        }
    }

    #[test]
    fn run_is_query_alias() {
        let a = parse_args(&argv("query --catalog c.prgc --query q.lg")).unwrap();
        let b = parse_args(&argv("run --catalog c.prgc --query q.lg")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_required_flag() {
        assert_eq!(
            parse_args(&argv("stats")),
            Err(ParseError::Missing("--catalog"))
        );
    }

    #[test]
    fn bad_value_reported() {
        assert!(matches!(
            parse_args(&argv("build --data d.lg --out c --alpha xyz")),
            Err(ParseError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_command() {
        assert!(matches!(
            parse_args(&argv("frobnicate")),
            Err(ParseError::UnknownCommand(_))
        ));
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
    }
}
