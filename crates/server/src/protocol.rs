//! The wire protocol: one JSON object per line, request → response.
//!
//! Each frame is a single `\n`-terminated JSON object with an `"op"`
//! field naming the action; everything the paper's GUI does maps to one
//! op. Responses always carry `"ok"`: `true` with op-specific fields, or
//! `false` with a stable machine-readable `"error"` code and a human
//! `"message"`. The full frame reference lives in README.md § "The query
//! service"; parsing reuses the workspace's serde-free JSON parser
//! ([`prague_obs::json`]) so the server adds no dependencies.
//!
//! Robustness contract (pinned by `tests/protocol.rs`): malformed JSON,
//! wrong-typed fields, unknown ops, and oversized lines each produce a
//! typed error frame — never a panic, never a dropped connection (except
//! oversized lines, where the peer is misbehaving and the connection
//! closes after the error frame).

use prague_obs::json::{self, Value};

/// Hard cap on one frame line, terminator included. Long enough for any
/// legitimate query (64 edges ≈ a few hundred bytes), short enough that
/// a peer streaming garbage cannot balloon connection buffers.
pub const MAX_LINE: usize = 64 * 1024;

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; carries no state.
    Ping,
    /// Create a session; `sigma` defaults to the server's configured σ.
    Open {
        /// Subgraph distance threshold override.
        sigma: Option<usize>,
    },
    /// Drop a node on the canvas, by numeric label or by name.
    Node {
        /// Target session.
        session: u64,
        /// Numeric label id (used when `name` is absent).
        label: Option<u16>,
        /// Label name resolved against the system's label table.
        name: Option<String>,
    },
    /// Draw an edge (the paper's `New` action).
    Edge {
        /// Target session.
        session: u64,
        /// First endpoint (canvas node id).
        u: u32,
        /// Second endpoint (canvas node id).
        v: u32,
    },
    /// Delete one or more edges (the paper's `Modify` action).
    Delete {
        /// Target session.
        session: u64,
        /// Edge labels ℓ to delete.
        edges: Vec<u32>,
    },
    /// Relabel a canvas node (footnote 5: delete + re-insert).
    Relabel {
        /// Target session.
        session: u64,
        /// Canvas node id.
        node: u32,
        /// New numeric label.
        label: u16,
    },
    /// Switch the session to similarity mode (`SimQuery`).
    Similar {
        /// Target session.
        session: u64,
    },
    /// Execute the query (`Run`).
    Run {
        /// Target session.
        session: u64,
    },
    /// Service-level statistics (no session required).
    Stats,
    /// Close a session and free its state.
    Close {
        /// Target session.
        session: u64,
    },
}

impl Request {
    /// The session id this request addresses, if any. `ping`, `open`,
    /// and `stats` are session-free; everything else targets one
    /// session, and the manager checks connection ownership against it.
    pub fn session_id(&self) -> Option<u64> {
        match self {
            Request::Node { session, .. }
            | Request::Edge { session, .. }
            | Request::Delete { session, .. }
            | Request::Relabel { session, .. }
            | Request::Similar { session }
            | Request::Run { session }
            | Request::Close { session } => Some(*session),
            Request::Ping | Request::Open { .. } | Request::Stats => None,
        }
    }
}

/// A protocol-level failure: stable `code` for machines, `message` for
/// humans. Rendered as an `"ok": false` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

fn bad_frame(message: impl Into<String>) -> ProtoError {
    ProtoError {
        code: "bad_frame",
        message: message.into(),
    }
}

/// Extract a required non-negative integer field that fits in `max`.
fn int_field(v: &Value, key: &str, max: u64) -> Result<u64, ProtoError> {
    let field = v
        .get(key)
        .ok_or_else(|| bad_frame(format!("missing field '{key}'")))?;
    let f = field
        .as_f64()
        .ok_or_else(|| bad_frame(format!("field '{key}' must be a number")))?;
    if !f.is_finite() || f < 0.0 || f.fract() != 0.0 || f > max as f64 {
        return Err(bad_frame(format!(
            "field '{key}' must be an integer in [0, {max}]"
        )));
    }
    Ok(f as u64)
}

fn opt_int_field(v: &Value, key: &str, max: u64) -> Result<Option<u64>, ProtoError> {
    if v.get(key).is_none() {
        return Ok(None);
    }
    int_field(v, key, max).map(Some)
}

fn session_field(v: &Value) -> Result<u64, ProtoError> {
    int_field(v, "session", u64::MAX >> 11) // 2^53: exact in f64
}

/// Parse one request line. `line` must be exactly one JSON object
/// (surrounding whitespace tolerated, trailing `\n` stripped by the
/// transport).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_LINE {
        return Err(ProtoError {
            code: "line_too_long",
            message: format!("frame exceeds {MAX_LINE} bytes"),
        });
    }
    let value = json::parse(line).map_err(|e| ProtoError {
        code: "bad_json",
        message: e.to_string(),
    })?;
    if value.as_object().is_none() {
        return Err(bad_frame("frame must be a JSON object"));
    }
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| bad_frame("missing string field 'op'"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "open" => Ok(Request::Open {
            sigma: opt_int_field(&value, "sigma", 64)?.map(|s| s as usize),
        }),
        "node" => {
            let session = session_field(&value)?;
            let name = value
                .get("name")
                .map(|n| {
                    n.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| bad_frame("field 'name' must be a string"))
                })
                .transpose()?;
            let label = opt_int_field(&value, "label", u64::from(u16::MAX))?.map(|l| l as u16);
            if name.is_none() && label.is_none() {
                return Err(bad_frame("'node' needs 'label' or 'name'"));
            }
            Ok(Request::Node {
                session,
                label,
                name,
            })
        }
        "edge" => Ok(Request::Edge {
            session: session_field(&value)?,
            u: int_field(&value, "u", u64::from(u32::MAX))? as u32,
            v: int_field(&value, "v", u64::from(u32::MAX))? as u32,
        }),
        "delete" => {
            let session = session_field(&value)?;
            let edges = match value.get("edges") {
                Some(arr) => {
                    let items = arr
                        .as_array()
                        .ok_or_else(|| bad_frame("field 'edges' must be an array"))?;
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        let f = item
                            .as_f64()
                            .ok_or_else(|| bad_frame("'edges' entries must be numbers"))?;
                        if !f.is_finite() || f < 0.0 || f.fract() != 0.0 || f > u32::MAX as f64 {
                            return Err(bad_frame("'edges' entries must be u32 integers"));
                        }
                        out.push(f as u32);
                    }
                    out
                }
                None => vec![int_field(&value, "edge", u64::from(u32::MAX))? as u32],
            };
            if edges.is_empty() {
                return Err(bad_frame("'delete' needs at least one edge"));
            }
            Ok(Request::Delete { session, edges })
        }
        "relabel" => Ok(Request::Relabel {
            session: session_field(&value)?,
            node: int_field(&value, "node", u64::from(u32::MAX))? as u32,
            label: int_field(&value, "label", u64::from(u16::MAX))? as u16,
        }),
        "similar" => Ok(Request::Similar {
            session: session_field(&value)?,
        }),
        "run" => Ok(Request::Run {
            session: session_field(&value)?,
        }),
        "stats" => Ok(Request::Stats),
        "close" => Ok(Request::Close {
            session: session_field(&value)?,
        }),
        other => Err(ProtoError {
            code: "unknown_op",
            message: format!("unknown op '{other}'"),
        }),
    }
}

/// Render an error response frame.
pub fn error_frame(code: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        json::escape(code),
        json::escape(message)
    )
}

impl ProtoError {
    /// This error as a response frame.
    pub fn to_frame(&self) -> String {
        error_frame(self.code, &self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request("{\"op\":\"ping\"}"), Ok(Request::Ping));
        assert_eq!(
            parse_request("{\"op\":\"open\",\"sigma\":2}"),
            Ok(Request::Open { sigma: Some(2) })
        );
        assert_eq!(
            parse_request("{\"op\":\"open\"}"),
            Ok(Request::Open { sigma: None })
        );
        assert_eq!(
            parse_request("{\"op\":\"node\",\"session\":1,\"label\":3}"),
            Ok(Request::Node {
                session: 1,
                label: Some(3),
                name: None
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"node\",\"session\":1,\"name\":\"C\"}"),
            Ok(Request::Node {
                session: 1,
                label: None,
                name: Some("C".into())
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"edge\",\"session\":1,\"u\":0,\"v\":1}"),
            Ok(Request::Edge {
                session: 1,
                u: 0,
                v: 1
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"delete\",\"session\":1,\"edge\":2}"),
            Ok(Request::Delete {
                session: 1,
                edges: vec![2]
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"delete\",\"session\":1,\"edges\":[2,3]}"),
            Ok(Request::Delete {
                session: 1,
                edges: vec![2, 3]
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"relabel\",\"session\":1,\"node\":0,\"label\":5}"),
            Ok(Request::Relabel {
                session: 1,
                node: 0,
                label: 5
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"similar\",\"session\":4}"),
            Ok(Request::Similar { session: 4 })
        );
        assert_eq!(
            parse_request("{\"op\":\"run\",\"session\":4}"),
            Ok(Request::Run { session: 4 })
        );
        assert_eq!(parse_request("{\"op\":\"stats\"}"), Ok(Request::Stats));
        assert_eq!(
            parse_request("{\"op\":\"close\",\"session\":4}"),
            Ok(Request::Close { session: 4 })
        );
    }

    #[test]
    fn malformed_frames_get_typed_errors() {
        assert_eq!(parse_request("not json").unwrap_err().code, "bad_json");
        assert_eq!(parse_request("[1,2]").unwrap_err().code, "bad_frame");
        assert_eq!(parse_request("{}").unwrap_err().code, "bad_frame");
        assert_eq!(
            parse_request("{\"op\":\"warp\"}").unwrap_err().code,
            "unknown_op"
        );
        assert_eq!(
            parse_request("{\"op\":\"run\"}").unwrap_err().code,
            "bad_frame"
        );
        assert_eq!(
            parse_request("{\"op\":\"run\",\"session\":-1}")
                .unwrap_err()
                .code,
            "bad_frame"
        );
        assert_eq!(
            parse_request("{\"op\":\"run\",\"session\":1.5}")
                .unwrap_err()
                .code,
            "bad_frame"
        );
        assert_eq!(
            parse_request("{\"op\":\"edge\",\"session\":1,\"u\":0}")
                .unwrap_err()
                .code,
            "bad_frame"
        );
        let long = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(MAX_LINE));
        assert_eq!(parse_request(&long).unwrap_err().code, "line_too_long");
    }

    #[test]
    fn error_frames_escape_payloads() {
        let f = error_frame("bad_json", "quote \" and \\ backslash");
        assert!(f.contains("\\\""));
        assert!(prague_obs::json::parse(&f).is_ok());
    }
}
