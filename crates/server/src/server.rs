//! The TCP transport: one thread per connection, one JSON frame per line.
//!
//! The transport is deliberately thin — all protocol and scheduling
//! logic lives in [`SessionManager`] — and hardened at the edges:
//!
//! * lines are read with an explicit [`crate::protocol::MAX_LINE`] cap;
//!   a peer that streams past it — newline-terminated or not — gets one
//!   `line_too_long` error frame and the connection is closed (buffers
//!   never balloon);
//! * concurrent connections are capped at
//!   [`crate::ServerConfig::max_conns`]; an accept past the cap is
//!   answered with one `too_many_connections` frame and closed, so a
//!   connection flood cannot exhaust threads;
//! * a half-closed or reset connection tears down cleanly: every session
//!   the connection opened (and did not close) is closed for it, which
//!   cancels any in-flight speculative verification via the session's
//!   own drop path;
//! * reads use a bounded timeout so connection threads observe shutdown
//!   promptly without idle connections spinning; [`Server`] joins its
//!   accept loop and every connection thread on
//!   [`Server::shutdown`]/drop — no leaked threads.

use crate::manager::{ConnSessions, SessionManager};
use crate::protocol::{error_frame, MAX_LINE};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Poll interval for the accept loop; bounds how long shutdown waits on
/// an idle listener.
const POLL: Duration = Duration::from_millis(20);

/// Read timeout for connection sockets. EOF and data wake a read
/// immediately regardless, so this only paces how often an *idle*
/// connection re-checks the shutdown flag — long enough that parked
/// connections barely burn CPU, short enough that shutdown stays
/// prompt.
const READ_POLL: Duration = Duration::from_millis(200);

/// A running query service bound to a TCP port.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections against `manager`.
    pub fn bind(addr: &str, manager: Arc<SessionManager>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || accept_loop(&listener, &manager, &flag));
        Ok(Server {
            addr: local,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join every connection thread, and return. Also
    /// runs on drop; calling it explicitly just makes teardown visible.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            // A panicked accept loop already tore the service down; there
            // is nothing further to unwind here.
            drop(handle.join());
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, manager: &Arc<SessionManager>, shutdown: &Arc<AtomicBool>) {
    // Connection handles live only on this thread; reaped as connections
    // finish so the list tracks live connections, not connection history.
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                conns.retain(|h| !h.is_finished());
                if conns.len() >= manager.config().max_conns {
                    // Refuse past the cap: one typed frame, then close.
                    // A flood therefore costs one write per attempt, not
                    // a thread.
                    let frame = error_frame("too_many_connections", "connection limit reached");
                    drop(write_frame(&mut stream, &frame));
                    continue;
                }
                let manager = Arc::clone(manager);
                let flag = Arc::clone(shutdown);
                conns.push(std::thread::spawn(move || {
                    serve_conn(stream, &manager, &flag)
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for h in conns {
        drop(h.join());
    }
}

/// Serve one connection until EOF, error, oversized line, or shutdown.
/// On every exit path the connection's surviving sessions are closed.
fn serve_conn(stream: TcpStream, manager: &Arc<SessionManager>, shutdown: &Arc<AtomicBool>) {
    let mut owned = ConnSessions::new();
    run_conn(stream, manager, shutdown, &mut owned);
    owned.close_all(manager);
}

fn run_conn(
    mut stream: TcpStream,
    manager: &Arc<SessionManager>,
    shutdown: &Arc<AtomicBool>,
    owned: &mut ConnSessions,
) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while !shutdown.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF / half-close
            Ok(n) => {
                buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=nl).collect();
                    let text = String::from_utf8_lossy(&line);
                    let text = text.trim();
                    // Same cap `parse_request` enforces: an over-long
                    // *terminated* line gets its `line_too_long` frame
                    // below, then the documented hang-up — matching the
                    // unterminated path.
                    let too_long = text.len() > MAX_LINE;
                    let response = manager.handle_line(text, Some(owned));
                    if write_frame(&mut stream, &response).is_err() || too_long {
                        return;
                    }
                }
                if buf.len() > MAX_LINE {
                    // The peer is streaming an unterminated frame past
                    // the cap: reply once, then hang up.
                    let frame = error_frame("line_too_long", "frame exceeds the line cap");
                    drop(write_frame(&mut stream, &frame));
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return, // reset / broken pipe
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &str) -> std::io::Result<()> {
    stream.write_all(frame.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
