//! # prague-server
//!
//! The multi-session query service: many concurrent formulation
//! sessions, one shared PRAGUE system, one fair verification pool.
//!
//! The paper evaluates PRAGUE as a single user at a canvas; a deployed
//! service fronts *many* canvases at once. This crate supplies that
//! layer, std-only like the rest of the workspace:
//!
//! * [`protocol`] — a line-oriented JSON protocol (one object per line:
//!   `open` / `node` / `edge` / `delete` / `relabel` / `similar` /
//!   `run` / `stats` / `close` / `ping`), parsed with the workspace's
//!   serde-free parser and hardened against malformed input;
//! * [`manager`] — the [`SessionManager`]: hundreds of
//!   `Session<'static>`s co-owning one read-mostly
//!   [`prague::PragueSystem`], with per-session memory caps, idle
//!   expiry against an injectable [`Clock`], and fair admission of
//!   verify-carrying frames onto the shared pool through
//!   [`prague_par::FairGate`] so a heavy session cannot starve light
//!   ones out of their GUI latency budget;
//! * [`server`] — a thread-per-connection TCP transport that tears
//!   down cleanly on disconnect (sessions closed, speculative
//!   verification cancelled, threads joined);
//! * [`clock`] — the deterministic time source the lifecycle tests
//!   drive ([`FakeClock`]) and production runs on ([`SystemClock`]).
//!
//! Service behavior is observable through the `srv.*` metrics
//! documented in ARCHITECTURE.md § "Service layer" and pinned by
//! `tests/integration_service.rs`; `prague serve` (the CLI) and
//! `exp_service_load` (the bench harness) are the two front doors.

#![warn(missing_docs)]

pub mod clock;
pub mod manager;
pub mod protocol;
pub mod server;

pub use clock::{Clock, FakeClock, SystemClock};
pub use manager::{ConnSessions, LifecycleStats, ServerConfig, SessionManager};
pub use protocol::{parse_request, ProtoError, Request, MAX_LINE};
pub use server::Server;
