//! Time source abstraction for session lifecycle decisions.
//!
//! Idle expiry compares "now" against each session's last-used stamp.
//! Testing that with the OS clock means sleeping through real timeouts;
//! instead the manager takes a [`Clock`] and the lifecycle tests drive a
//! [`FakeClock`] forward deterministically. Production uses
//! [`SystemClock`] — a monotonic nanosecond counter anchored at
//! construction (never the wall clock, which can step backwards).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond counter. Implementations must be cheap —
/// the manager reads it on every frame.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin; never decreases.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic time since construction.
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock anchored at the moment of this call.
    pub fn new() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of uptime; the saturating cast
        // is unreachable in practice but keeps this panic-free.
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic lifecycle tests: time moves
/// only when the test says so.
#[derive(Default)]
pub struct FakeClock {
    ns: AtomicU64,
}

impl FakeClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        FakeClock {
            ns: AtomicU64::new(0),
        }
    }

    /// Advance by `d` (saturating).
    pub fn advance(&self, d: Duration) {
        let delta = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let _ = self
            .ns
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                Some(cur.saturating_add(delta))
            });
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_moves_only_on_advance() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_secs(3));
        assert_eq!(c.now_ns(), 3_000_000_000);
        assert_eq!(c.now_ns(), 3_000_000_000);
        c.advance(Duration::from_nanos(7));
        assert_eq!(c.now_ns(), 3_000_000_007);
    }
}
