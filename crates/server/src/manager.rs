//! The session manager: many users, one system.
//!
//! A [`SessionManager`] hosts every live [`prague::session::Session`]
//! over one shared, read-mostly [`PragueSystem`] (indexes behind an
//! `Arc`, co-owned via [`PragueSystem::session_shared`]). The manager is
//! the service-side enforcement point for the paper's interactivity
//! premise: each individual session's per-step work must keep fitting
//! inside GUI think time even when hundreds of sessions share one
//! verification pool. Three mechanisms make that hold:
//!
//! * **fair admission** — verify-carrying frames (`edge`, `delete`,
//!   `relabel`, `run`) pass through a [`FairGate`] keyed by session id,
//!   so a heavy session queues behind every light session's next step
//!   instead of monopolising the pool (wait time: `srv.queue_wait_ns`);
//! * **memory caps** — after each frame the session's candidate-memo
//!   footprint ([`prague::candidates::CandMemo::bytes`], the
//!   `cand.idset_bytes` gauge's per-session analogue) is checked against
//!   [`ServerConfig::session_memory_cap`]; an over-budget session is
//!   evicted (`srv.sessions_evicted`) without touching its neighbours;
//! * **idle expiry** — sessions unused for
//!   [`ServerConfig::idle_timeout`] are swept (`srv.sessions_expired`),
//!   against an injected [`Clock`] so the lifecycle is testable without
//!   sleeping. Dropping a session cancels its in-flight speculative
//!   verification through the existing generation/cancel path.
//!
//! Frames for *different* sessions execute concurrently (each session
//! sits behind its own mutex; the manager map is locked only for
//! lookup); frames for the same session serialize, which matches one
//! user at one canvas.
//!
//! Sessions are **connection-scoped**: ids are sequential and therefore
//! guessable, so frames arriving over a TCP connection may only address
//! sessions that connection opened ([`ConnSessions::owns`]); a frame
//! for anyone else's session is answered `unknown_session`, exactly as
//! if the session did not exist.

use crate::clock::Clock;
use crate::protocol::{error_frame, parse_request, ProtoError, Request};
use prague::session::{QueryResults, Session, SessionError, StepStatus};
use prague::PragueSystem;
use prague_graph::Label;
use prague_obs::{names, Obs};
use prague_par::FairGate;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Service tuning knobs. Defaults suit an interactive deployment in
/// front of a pool of a few workers; every test overrides what it pins.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// σ used by `open` frames that don't specify one.
    pub default_sigma: usize,
    /// Hard cap on concurrently live sessions; `open` beyond it fails
    /// with `server_full`.
    pub max_sessions: usize,
    /// Hard cap on concurrently served TCP connections; an accept past
    /// it is answered with one `too_many_connections` error frame and
    /// closed (enforced by the transport, configured here so one struct
    /// carries every service knob).
    pub max_conns: usize,
    /// Per-session candidate-memo budget in bytes; a session observed
    /// over budget after a frame is evicted.
    pub session_memory_cap: usize,
    /// Sessions idle longer than this are expired by the sweep that
    /// runs before each frame.
    pub idle_timeout: Duration,
    /// Global verify-admission slots (the [`FairGate`] total).
    pub fair_slots: usize,
    /// Per-session admission quota (the [`FairGate`] per-key cap).
    pub per_session_quota: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            default_sigma: 2,
            max_sessions: 1024,
            max_conns: 1024,
            session_memory_cap: 64 << 20,
            idle_timeout: Duration::from_secs(300),
            fair_slots: 8,
            per_session_quota: 2,
        }
    }
}

/// Lifecycle counters mirrored outside the obs registry so `stats`
/// frames can report them even when observability is disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct LifecycleStats {
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed by request.
    pub closed: u64,
    /// Sessions swept by idle expiry.
    pub expired: u64,
    /// Sessions evicted over the memory cap.
    pub evicted: u64,
}

struct Slot {
    session: Mutex<Session<'static>>,
    /// Last-used stamp in [`Clock`] nanoseconds; read by the idle sweep
    /// without taking the session mutex.
    last_used_ns: AtomicU64,
}

struct ManagerState {
    /// Live sessions. Growth is bounded by `max_sessions` (enforced in
    /// `open`) plus the idle sweep and memory-cap eviction.
    sessions: BTreeMap<u64, Arc<Slot>>,
    next_id: u64,
    stats: LifecycleStats,
}

/// Hosts all live sessions over one shared [`PragueSystem`]. See the
/// [module docs](self) for the scheduling and lifecycle contract.
pub struct SessionManager {
    system: Arc<PragueSystem>,
    cfg: ServerConfig,
    clock: Arc<dyn Clock>,
    gate: FairGate,
    obs: Obs,
    state: Mutex<ManagerState>,
}

/// Mutex recovery: manager state is updated in whole steps, so poisoning
/// by a panicking frame handler is survivable; count it like the pool
/// does rather than wedging every later frame.
fn lock<'a, T>(m: &'a Mutex<T>, obs: &Obs) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| {
        obs.add(names::PAR_POISONED, 1);
        poisoned.into_inner()
    })
}

impl SessionManager {
    /// A manager over `system`, using `clock` for idle expiry. The
    /// observability handle is inherited from the system.
    pub fn new(system: Arc<PragueSystem>, cfg: ServerConfig, clock: Arc<dyn Clock>) -> Self {
        let obs = system.obs().clone();
        SessionManager {
            gate: FairGate::new(cfg.fair_slots, cfg.per_session_quota, obs.clone()),
            system,
            cfg,
            clock,
            obs,
            state: Mutex::new(ManagerState {
                sessions: BTreeMap::new(),
                next_id: 1,
                stats: LifecycleStats::default(),
            }),
        }
    }

    /// The manager's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The shared system.
    pub fn system(&self) -> &Arc<PragueSystem> {
        &self.system
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        lock(&self.state, &self.obs).sessions.len()
    }

    /// Lifecycle counters so far.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        lock(&self.state, &self.obs).stats
    }

    /// Whether a session id is currently live.
    pub fn is_live(&self, id: u64) -> bool {
        lock(&self.state, &self.obs).sessions.contains_key(&id)
    }

    /// Open a session; returns its id, or `None` when the manager is at
    /// [`ServerConfig::max_sessions`].
    pub fn open(&self, sigma: Option<usize>) -> Option<u64> {
        self.sweep_idle();
        let sigma = sigma.unwrap_or(self.cfg.default_sigma);
        let session = self.system.session_shared(sigma);
        let mut state = lock(&self.state, &self.obs);
        if state.sessions.len() >= self.cfg.max_sessions {
            return None;
        }
        let id = state.next_id;
        state.next_id = state.next_id.wrapping_add(1);
        state.sessions.insert(
            id,
            Arc::new(Slot {
                session: Mutex::new(session),
                last_used_ns: AtomicU64::new(self.clock.now_ns()),
            }),
        );
        state.stats.opened += 1;
        drop(state);
        self.obs.add(names::SRV_SESSIONS_OPENED, 1);
        Some(id)
    }

    /// Close a session (idempotent). Dropping the last handle cancels
    /// any in-flight speculative verification via `Session`'s own drop.
    pub fn close(&self, id: u64) -> bool {
        let mut state = lock(&self.state, &self.obs);
        let existed = state.sessions.remove(&id).is_some();
        if existed {
            state.stats.closed += 1;
            drop(state);
            self.obs.add(names::SRV_SESSIONS_CLOSED, 1);
        }
        existed
    }

    /// Expire every session idle longer than the configured timeout.
    /// Runs before each frame; also callable directly (tests, a serve
    /// loop's housekeeping tick).
    pub fn sweep_idle(&self) {
        let now = self.clock.now_ns();
        let timeout = u64::try_from(self.cfg.idle_timeout.as_nanos()).unwrap_or(u64::MAX);
        let mut state = lock(&self.state, &self.obs);
        let expired: Vec<u64> = state
            .sessions
            .iter()
            .filter(|(_, slot)| {
                // A held session mutex means a frame is mid-flight on it
                // right now — not idle, however stale the stamp looks
                // (e.g. a long fair-gate wait under heavy contention).
                // Poisoned counts as free: the frame that held it is
                // gone, and expiring the wreck is the right outcome.
                let in_flight = matches!(
                    slot.session.try_lock(),
                    Err(std::sync::TryLockError::WouldBlock)
                );
                !in_flight && now.saturating_sub(slot.last_used_ns.load(Ordering::SeqCst)) > timeout
            })
            .map(|(&id, _)| id)
            .collect();
        let n = expired.len() as u64;
        for id in expired {
            // Removing the map entry drops the manager's handle; the
            // session itself (and its pending-verify cancellation) drops
            // when any concurrent frame on it finishes.
            state.sessions.remove(&id);
        }
        if n > 0 {
            state.stats.expired += n;
            drop(state);
            self.obs.add(names::SRV_SESSIONS_EXPIRED, n);
        }
    }

    fn slot(&self, id: u64) -> Option<Arc<Slot>> {
        lock(&self.state, &self.obs).sessions.get(&id).cloned()
    }

    /// Evict `id` after a frame observed it over the memory cap.
    fn evict(&self, id: u64) {
        let mut state = lock(&self.state, &self.obs);
        if state.sessions.remove(&id).is_some() {
            state.stats.evicted += 1;
            drop(state);
            self.obs.add(names::SRV_SESSIONS_EVICTED, 1);
        }
    }

    /// Handle one raw request line: parse, dispatch, render the response
    /// frame. Never panics; every failure becomes an `"ok": false`
    /// frame. `opened`/`closed` session ids are appended to `lifecycle`
    /// when provided so a connection can tear down what it owns — and
    /// when provided, session-addressed frames are restricted to the
    /// sessions that connection opened (others get `unknown_session`).
    pub fn handle_line(&self, line: &str, lifecycle: Option<&mut ConnSessions>) -> String {
        let t0 = Instant::now();
        self.obs.add(names::SRV_FRAMES, 1);
        let response = match parse_request(line) {
            Ok(req) => self.dispatch(req, lifecycle),
            Err(e) => {
                self.obs.add(names::SRV_FRAME_ERRORS, 1);
                e.to_frame()
            }
        };
        self.obs.observe_ns(names::SRV_FRAME_NS, t0.elapsed());
        response
    }

    /// Handle an already-parsed request (the manager-level entry point
    /// used by tests and the bench harness; `handle_line` wraps it).
    pub fn handle(&self, req: Request) -> String {
        self.dispatch(req, None)
    }

    fn dispatch(&self, req: Request, lifecycle: Option<&mut ConnSessions>) -> String {
        self.sweep_idle();
        // Sessions are connection-scoped: ids are sequential (guessable),
        // so a frame arriving over a connection may only address sessions
        // that connection opened — anything else is answered exactly like
        // a dead session, revealing nothing. In-process callers (tests,
        // the bench harness) pass no `lifecycle` and stay unrestricted.
        if let (Some(conn), Some(sid)) = (lifecycle.as_ref(), req.session_id()) {
            if !conn.owns(sid) {
                return self.unknown_session(sid);
            }
        }
        match req {
            Request::Ping => "{\"ok\":true,\"pong\":true}".to_owned(),
            Request::Open { sigma } => match self.open(sigma) {
                Some(id) => {
                    if let Some(conn) = lifecycle {
                        conn.track(id);
                    }
                    format!("{{\"ok\":true,\"session\":{id}}}")
                }
                None => {
                    self.obs.add(names::SRV_FRAME_ERRORS, 1);
                    error_frame("server_full", "session limit reached")
                }
            },
            Request::Close { session } => {
                if let Some(conn) = lifecycle {
                    conn.untrack(session);
                }
                if self.close(session) {
                    "{\"ok\":true,\"closed\":true}".to_owned()
                } else {
                    self.unknown_session(session)
                }
            }
            Request::Stats => self.stats_frame(),
            Request::Node {
                session,
                label,
                name,
            } => self.with_session(session, |mgr, s| {
                let label = match (label, name) {
                    (Some(l), _) => Label(l),
                    (None, Some(n)) => match mgr.system.labels().get(&n) {
                        Some(l) => l,
                        None => {
                            return Err(ProtoError {
                                code: "unknown_label",
                                message: format!("label name '{n}' not in the label table"),
                            })
                        }
                    },
                    (None, None) => return Err(bad_session_frame("'node' needs 'label' or 'name'")),
                };
                Ok(format!(
                    "{{\"ok\":true,\"node\":{}}}",
                    s.add_node(label)
                ))
            }),
            Request::Edge { session, u, v } => self.with_session_gated(session, |_, s| {
                let out = s.add_edge(u, v).map_err(session_error)?;
                let status = status_str(out.status);
                let suggested = out
                    .suggestion
                    .as_ref()
                    .map_or(String::new(), |sug| format!(",\"suggested_edge\":{}", sug.edge));
                Ok(format!(
                    "{{\"ok\":true,\"edge\":{},\"status\":\"{status}\",\"candidates\":{}{suggested},\"elapsed_ns\":{}}}",
                    out.edge,
                    out.candidate_count,
                    out.total_time().as_nanos()
                ))
            }),
            Request::Delete { session, edges } => self.with_session_gated(session, |_, s| {
                let out = s.delete_edges(&edges).map_err(session_error)?;
                Ok(format!(
                    "{{\"ok\":true,\"candidates\":{},\"elapsed_ns\":{}}}",
                    out.candidate_count,
                    out.modify_time.as_nanos()
                ))
            }),
            Request::Relabel {
                session,
                node,
                label,
            } => self.with_session_gated(session, |_, s| {
                let new_edges = s.relabel_node(node, Label(label)).map_err(session_error)?;
                let rendered: Vec<String> = new_edges.iter().map(u32::to_string).collect();
                Ok(format!(
                    "{{\"ok\":true,\"new_edges\":[{}]}}",
                    rendered.join(",")
                ))
            }),
            Request::Similar { session } => self.with_session(session, |_, s| {
                let n = s.choose_similarity().map_err(session_error)?;
                Ok(format!("{{\"ok\":true,\"candidates\":{n}}}"))
            }),
            Request::Run { session } => self.with_session_gated(session, |_, s| {
                let out = s.run().map_err(session_error)?;
                let results = match &out.results {
                    QueryResults::Exact(ids) => {
                        let rendered: Vec<String> = ids.iter().map(u32::to_string).collect();
                        format!("\"kind\":\"exact\",\"results\":[{}]", rendered.join(","))
                    }
                    QueryResults::Similar(sim) => {
                        let rendered: Vec<String> = sim
                            .matches
                            .iter()
                            .map(|m| {
                                format!(
                                    "{{\"graph\":{},\"distance\":{}}}",
                                    m.graph_id, m.distance
                                )
                            })
                            .collect();
                        format!("\"kind\":\"similar\",\"results\":[{}]", rendered.join(","))
                    }
                };
                Ok(format!(
                    "{{\"ok\":true,{results},\"srt_ns\":{}}}",
                    out.srt.as_nanos()
                ))
            }),
        }
    }

    /// Run `f` on the session, serialized against other frames for the
    /// same session, stamping last-used and enforcing the memory cap.
    fn with_session<F>(&self, id: u64, f: F) -> String
    where
        F: FnOnce(&Self, &mut Session<'static>) -> Result<String, ProtoError>,
    {
        let Some(slot) = self.slot(id) else {
            return self.unknown_session(id);
        };
        slot.last_used_ns
            .store(self.clock.now_ns(), Ordering::SeqCst);
        let mut session = lock(&slot.session, &self.obs);
        // Holding the session mutex across the handler IS the contract —
        // frames for one session serialize (one user, one canvas). The
        // guard is per-session and never nested inside the manager-state
        // or gate locks, so no ordering cycle.
        // audit:allow(lock-across-call): per-session serialization by design
        let result = f(self, &mut session);
        let over_cap = session.memo().bytes() > self.cfg.session_memory_cap;
        drop(session);
        // Stamp again now the frame is done: idleness is measured from
        // the end of the last frame, not its start, so a frame that
        // waited a long time at the fair gate doesn't leave a stale
        // stamp behind for the next sweep to misread.
        slot.last_used_ns
            .store(self.clock.now_ns(), Ordering::SeqCst);
        if over_cap {
            self.evict(id);
        }
        match result {
            Ok(frame) => frame,
            Err(e) => {
                self.obs.add(names::SRV_FRAME_ERRORS, 1);
                e.to_frame()
            }
        }
    }

    /// Like [`SessionManager::with_session`], but admission to the shared
    /// verification pool passes through the fair gate first: the frame
    /// blocks until this session is granted a slot, and the wait is
    /// recorded as `srv.queue_wait_ns`.
    fn with_session_gated<F>(&self, id: u64, f: F) -> String
    where
        F: FnOnce(&Self, &mut Session<'static>) -> Result<String, ProtoError>,
    {
        self.with_session(id, |mgr, session| {
            let permit = mgr.gate.acquire(id);
            mgr.obs
                .observe_ns(names::SRV_QUEUE_WAIT_NS, permit.waited());
            f(mgr, session)
        })
    }

    fn unknown_session(&self, id: u64) -> String {
        self.obs.add(names::SRV_FRAME_ERRORS, 1);
        error_frame("unknown_session", &format!("no live session {id}"))
    }

    fn stats_frame(&self) -> String {
        let state = lock(&self.state, &self.obs);
        let sessions = state.sessions.len();
        let stats = state.stats;
        drop(state);
        format!(
            "{{\"ok\":true,\"sessions\":{sessions},\"opened\":{},\"closed\":{},\"expired\":{},\"evicted\":{},\"db_graphs\":{}}}",
            stats.opened,
            stats.closed,
            stats.expired,
            stats.evicted,
            self.system.db().len()
        )
    }
}

/// Sessions owned by one connection, so the transport can close them on
/// disconnect (clean teardown: no leaked sessions, no leaked
/// speculative-verify batches).
#[derive(Debug, Default)]
pub struct ConnSessions {
    ids: Vec<u64>,
}

impl ConnSessions {
    /// An empty ownership set.
    pub fn new() -> Self {
        ConnSessions { ids: Vec::new() }
    }

    /// The owned session ids.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Whether this connection opened (and has not closed) `id`. The
    /// manager consults this before dispatching any session-addressed
    /// frame that arrived over a connection.
    pub fn owns(&self, id: u64) -> bool {
        self.ids.contains(&id)
    }

    fn track(&mut self, id: u64) {
        self.ids.push(id);
    }

    fn untrack(&mut self, id: u64) {
        self.ids.retain(|&i| i != id);
    }

    /// Close every owned session against `manager` (idempotent).
    pub fn close_all(&mut self, manager: &SessionManager) {
        for id in self.ids.drain(..) {
            manager.close(id);
        }
    }
}

fn status_str(s: StepStatus) -> &'static str {
    match s {
        StepStatus::Frequent => "frequent",
        StepStatus::Infrequent => "infrequent",
        StepStatus::Similar => "similar",
    }
}

fn bad_session_frame(message: &str) -> ProtoError {
    ProtoError {
        code: "bad_frame",
        message: message.to_owned(),
    }
}

/// A session-layer failure rendered as a protocol error: stable code
/// `query_error`, message from the session (escaping happens once, at
/// frame render time in [`error_frame`]).
fn session_error(e: SessionError) -> ProtoError {
    ProtoError {
        code: "query_error",
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;
    use prague::{PragueSystem, SystemParams};
    use prague_graph::{Graph, GraphDb};

    fn chain(labels: &[u16]) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(Label(l))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    /// Same shape as the core session tests: C-S-C frequent, C-S-O rare.
    fn system(threads: usize) -> Arc<PragueSystem> {
        let mut db = GraphDb::new();
        for _ in 0..6 {
            db.push(chain(&[0, 1, 0]));
        }
        for _ in 0..4 {
            db.push(chain(&[0, 0, 0, 0]));
        }
        db.push(chain(&[0, 1, 2]));
        let mut sys = PragueSystem::build(
            db,
            SystemParams {
                alpha: 0.3,
                beta: 2,
                max_fragment_edges: 5,
                ..Default::default()
            },
        )
        .unwrap();
        sys.set_obs(Obs::enabled());
        if threads > 1 {
            sys.set_threads(threads);
        }
        Arc::new(sys)
    }

    fn manager_with(cfg: ServerConfig, threads: usize) -> (SessionManager, Arc<FakeClock>) {
        let clock = Arc::new(FakeClock::new());
        let mgr = SessionManager::new(system(threads), cfg, clock.clone());
        (mgr, clock)
    }

    fn draw_edge(mgr: &SessionManager, id: u64) {
        let a = mgr.handle(Request::Node {
            session: id,
            label: Some(0),
            name: None,
        });
        assert!(a.contains("\"ok\":true"), "node frame failed: {a}");
        let b = mgr.handle(Request::Node {
            session: id,
            label: Some(1),
            name: None,
        });
        assert!(b.contains("\"ok\":true"), "node frame failed: {b}");
        let e = mgr.handle(Request::Edge {
            session: id,
            u: 0,
            v: 1,
        });
        assert!(e.contains("\"ok\":true"), "edge frame failed: {e}");
    }

    #[test]
    fn idle_sessions_expire_against_the_fake_clock() {
        let (mgr, clock) = manager_with(
            ServerConfig {
                idle_timeout: Duration::from_secs(60),
                ..Default::default()
            },
            1,
        );
        let idle = mgr.open(None).unwrap();
        clock.advance(Duration::from_secs(40));
        let fresh = mgr.open(None).unwrap();
        draw_edge(&mgr, idle); // touch: resets the idle stamp
        clock.advance(Duration::from_secs(50));
        draw_edge(&mgr, fresh); // 90s idle for `idle`? no — touched at t=40
        mgr.sweep_idle();
        // `idle` was last used at t=40, now t=90: 50s idle, under timeout.
        assert!(mgr.is_live(idle));
        assert!(mgr.is_live(fresh));
        clock.advance(Duration::from_secs(55));
        mgr.sweep_idle();
        // t=145: `idle` 105s idle → expired; `fresh` 55s idle → alive.
        assert!(!mgr.is_live(idle));
        assert!(mgr.is_live(fresh));
        assert_eq!(mgr.lifecycle_stats().expired, 1);
        // frames for the expired session now fail with a typed error
        let resp = mgr.handle(Request::Run { session: idle });
        assert!(resp.contains("unknown_session"), "{resp}");
    }

    #[test]
    fn over_budget_session_is_evicted_others_untouched() {
        let (mgr, _clock) = manager_with(
            ServerConfig {
                session_memory_cap: 1, // any memo traffic exceeds this
                ..Default::default()
            },
            1,
        );
        let heavy = mgr.open(None).unwrap();
        let light = mgr.open(None).unwrap();
        // C-S, S-O: the two-edge fragment is infrequent, so its exact
        // candidates are computed by intersection and admitted to the
        // memo — that is the footprint the cap meters.
        for label in [0u16, 1, 2] {
            let resp = mgr.handle(Request::Node {
                session: heavy,
                label: Some(label),
                name: None,
            });
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
        for (u, v) in [(0u32, 1u32), (1, 2)] {
            let resp = mgr.handle(Request::Edge {
                session: heavy,
                u,
                v,
            });
            // With a 1-byte cap the first admitting step already evicts;
            // a later frame for the evicted id gets the typed error.
            assert!(
                resp.contains("\"ok\":true") || resp.contains("unknown_session"),
                "{resp}"
            );
        }
        assert!(
            !mgr.is_live(heavy),
            "session over the memory cap must be evicted"
        );
        assert!(mgr.is_live(light), "neighbours stay untouched");
        assert_eq!(mgr.lifecycle_stats().evicted, 1);
        // The cap meters each session individually: the light session is
        // only evicted once *it* admits memo entries past the (1-byte)
        // budget — which its own first steps then do.
        draw_edge(&mgr, light);
        assert!(!mgr.is_live(light));
        assert_eq!(mgr.lifecycle_stats().evicted, 2);
    }

    #[test]
    fn expiry_with_speculative_verify_in_flight_is_clean() {
        let (mgr, clock) = manager_with(
            ServerConfig {
                idle_timeout: Duration::from_secs(10),
                ..Default::default()
            },
            2, // pool on: edges submit speculative verify batches
        );
        let id = mgr.open(None).unwrap();
        // C-S-O is infrequent with a non-empty R_q → a speculative batch
        // is pending after this edge (the canvas is not an indexed
        // fragment, so `run` would have to verify).
        let n0 = mgr.handle(Request::Node {
            session: id,
            label: Some(1),
            name: None,
        });
        assert!(n0.contains("\"ok\":true"));
        let n1 = mgr.handle(Request::Node {
            session: id,
            label: Some(2),
            name: None,
        });
        assert!(n1.contains("\"ok\":true"));
        let e = mgr.handle(Request::Edge {
            session: id,
            u: 0,
            v: 1,
        });
        assert!(e.contains("\"ok\":true"), "{e}");
        // Expire it while the background batch may still be in flight:
        // the drop path cancels via the generation/cancel token.
        clock.advance(Duration::from_secs(11));
        mgr.sweep_idle();
        assert!(!mgr.is_live(id));
        assert_eq!(mgr.lifecycle_stats().expired, 1);
        // The pool survives and a fresh session still verifies fine.
        let id2 = mgr.open(None).unwrap();
        draw_edge(&mgr, id2);
        let run = mgr.handle(Request::Run { session: id2 });
        assert!(run.contains("\"kind\":\"exact\""), "{run}");
        let snap = mgr.system().obs().snapshot().expect("obs enabled");
        assert_eq!(
            snap.counter(names::PAR_POISONED).unwrap_or(0),
            0,
            "teardown must not poison the pool"
        );
    }

    #[test]
    fn open_respects_the_session_cap() {
        let (mgr, _clock) = manager_with(
            ServerConfig {
                max_sessions: 2,
                ..Default::default()
            },
            1,
        );
        assert!(mgr.open(None).is_some());
        let second = mgr.open(None).unwrap();
        assert!(mgr.open(None).is_none(), "cap reached");
        assert!(mgr.close(second));
        assert!(mgr.open(None).is_some(), "closing frees a slot");
        let resp = mgr.handle(Request::Open { sigma: None });
        assert!(resp.contains("server_full"), "{resp}");
    }

    #[test]
    fn stats_frame_reports_lifecycle() {
        let (mgr, clock) = manager_with(
            ServerConfig {
                idle_timeout: Duration::from_secs(5),
                ..Default::default()
            },
            1,
        );
        let a = mgr.open(None).unwrap();
        let _b = mgr.open(None).unwrap();
        mgr.close(a);
        clock.advance(Duration::from_secs(6));
        mgr.sweep_idle();
        let stats = mgr.handle(Request::Stats);
        assert!(stats.contains("\"sessions\":0"), "{stats}");
        assert!(stats.contains("\"opened\":2"), "{stats}");
        assert!(stats.contains("\"closed\":1"), "{stats}");
        assert!(stats.contains("\"expired\":1"), "{stats}");
        assert!(stats.contains("\"db_graphs\":11"), "{stats}");
    }

    #[test]
    fn in_flight_frame_survives_a_concurrent_idle_sweep() {
        let (mgr, clock) = manager_with(
            ServerConfig {
                idle_timeout: Duration::from_secs(10),
                ..Default::default()
            },
            1,
        );
        let id = mgr.open(None).unwrap();
        // Simulate a frame stuck far past the idle timeout (e.g. a long
        // fair-gate wait under contention): while the handler holds the
        // session mutex, a concurrent sweep runs against a stale stamp.
        // The held mutex marks the session in flight, so the sweep must
        // skip it rather than expire it mid-frame.
        let resp = mgr.with_session(id, |m, _s| {
            clock.advance(Duration::from_secs(60));
            m.sweep_idle();
            assert!(m.is_live(id), "swept while a frame was in flight");
            Ok("{\"ok\":true}".to_owned())
        });
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // The stamp was refreshed when the frame *finished*: an
        // immediate sweep keeps the session, one past the timeout
        // expires it.
        mgr.sweep_idle();
        assert!(mgr.is_live(id));
        clock.advance(Duration::from_secs(11));
        mgr.sweep_idle();
        assert!(!mgr.is_live(id));
        assert_eq!(mgr.lifecycle_stats().expired, 1);
    }

    #[test]
    fn connections_cannot_address_each_others_sessions() {
        let (mgr, _clock) = manager_with(ServerConfig::default(), 1);
        let mut conn_a = ConnSessions::new();
        let mut conn_b = ConnSessions::new();
        let open = mgr.handle_line("{\"op\":\"open\"}", Some(&mut conn_a));
        assert!(open.contains("\"session\":1"), "{open}");
        // B probes A's (sequential, guessable) id: every session-
        // addressed op — close included — is answered exactly as if the
        // session did not exist.
        for frame in [
            "{\"op\":\"node\",\"session\":1,\"label\":0}",
            "{\"op\":\"edge\",\"session\":1,\"u\":0,\"v\":1}",
            "{\"op\":\"run\",\"session\":1}",
            "{\"op\":\"close\",\"session\":1}",
        ] {
            let resp = mgr.handle_line(frame, Some(&mut conn_b));
            assert!(resp.contains("unknown_session"), "{frame}: {resp}");
        }
        // A's session survived the probing, still usable by A …
        assert!(mgr.is_live(1));
        let resp = mgr.handle_line(
            "{\"op\":\"node\",\"session\":1,\"label\":0}",
            Some(&mut conn_a),
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // … and by in-process callers (no connection, no restriction).
        let resp = mgr.handle_line("{\"op\":\"node\",\"session\":1,\"label\":1}", None);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    #[test]
    fn conn_sessions_close_all_is_idempotent() {
        let (mgr, _clock) = manager_with(ServerConfig::default(), 1);
        let mut conn = ConnSessions::new();
        let open = mgr.handle_line("{\"op\":\"open\"}", Some(&mut conn));
        assert!(open.contains("\"session\":1"), "{open}");
        assert_eq!(conn.ids(), &[1]);
        let close = mgr.handle_line("{\"op\":\"close\",\"session\":1}", Some(&mut conn));
        assert!(close.contains("\"closed\":true"), "{close}");
        assert!(conn.ids().is_empty(), "explicit close untracks");
        conn.close_all(&mgr); // nothing left: no double-close
        assert_eq!(mgr.lifecycle_stats().closed, 1);
    }
}
