//! Property tests for the baselines: on random databases and queries, no
//! filter may prune a true match (completeness), verified answers must
//! equal the MCCS oracle, and SIGMA's candidate set must be contained in
//! Grafil's (its bound dominates).

use prague_baselines::{DistVp, FeatureIndex, FeatureIndexConfig, Grafil, Sigma, SimilaritySearch};
use prague_graph::{Graph, GraphDb, GraphId, Label, NodeId};
use prague_mining::mine_classified;
use proptest::prelude::*;

fn connected_graph(max_n: usize, label_count: u16) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..label_count, n);
        let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..=2);
        (labels, parents, extras).prop_map(move |(labels, parents, extras)| {
            let mut g = Graph::new();
            for &l in &labels {
                g.add_node(Label(l));
            }
            for (i, &p) in parents.iter().enumerate() {
                g.add_edge((i + 1) as NodeId, (p as usize % (i + 1)) as NodeId)
                    .unwrap();
            }
            for &(a, b) in &extras {
                if a != b {
                    let _ = g.add_edge(a as NodeId, b as NodeId);
                }
            }
            g
        })
    })
}

fn small_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(connected_graph(6, 2), 4..9).prop_map(GraphDb::from_graphs)
}

fn oracle(q: &Graph, db: &GraphDb, sigma: usize) -> Vec<(GraphId, usize)> {
    db.iter()
        .filter_map(|(id, g)| {
            let d = prague_graph::mccs::subgraph_distance(q, g).unwrap();
            (d <= sigma && d < q.edge_count()).then_some((id, d))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grafil_and_sigma_are_exact(
        db in small_db(),
        q in connected_graph(5, 2),
        sigma in 0usize..3,
    ) {
        if q.edge_count() > 8 { return Ok(()); }
        let mining = mine_classified(&db, 0.4, 4);
        let features = FeatureIndex::build(&mining, &db, &FeatureIndexConfig::default());
        let want = {
            let mut w = oracle(&q, &db, sigma);
            w.sort_unstable();
            w
        };
        for answer in [
            Grafil::new(&features).search(&q, sigma, &db),
            Sigma::new(&features).search(&q, sigma, &db),
        ] {
            // completeness of the filter
            for &(id, _) in &want {
                prop_assert!(answer.candidates.contains(&id), "filter pruned a match");
            }
            // exactness after verification
            let mut got = answer.matches.clone();
            got.sort_unstable();
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn sigma_candidates_subset_of_grafil(
        db in small_db(),
        q in connected_graph(5, 2),
        sigma in 0usize..3,
    ) {
        let mining = mine_classified(&db, 0.4, 4);
        let features = FeatureIndex::build(&mining, &db, &FeatureIndexConfig::default());
        let gr = Grafil::new(&features).search(&q, sigma, &db);
        let sg = Sigma::new(&features).search(&q, sigma, &db);
        for id in &sg.candidates {
            prop_assert!(gr.candidates.contains(id), "SIGMA bound weaker than Grafil's");
        }
    }

    #[test]
    fn distvp_is_exact(
        db in small_db(),
        q in connected_graph(4, 2),
        sigma in 0usize..3,
    ) {
        let dvp = DistVp::build(&db, sigma);
        let answer = dvp.search(&q, sigma, &db);
        let mut want = oracle(&q, &db, sigma);
        want.sort_unstable();
        for &(id, _) in &want {
            prop_assert!(answer.candidates.contains(&id), "DVP pruned a match");
        }
        let mut got = answer.matches.clone();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
