//! Shared plumbing for the traditional-paradigm baselines: the common
//! answer shape, and MCCS-based similarity verification by reduction to
//! exact subgraph-isomorphism tests (the strategy the paper attributes to
//! Grafil/SIGMA: "converts the subgraph similarity verification problem to
//! the exact subgraph isomorphism verification problem").

use prague_graph::enumerate::{connected_edge_subsets_by_size, mask_edges};
use prague_graph::vf2::{is_subgraph_with_order, MatchOrder};
use prague_graph::{Graph, GraphDb, GraphId};
use prague_index::IndexFootprint;
use std::time::Duration;

/// A similarity answer from a baseline: ranked `(graph id, distance)`.
#[derive(Debug, Clone, Default)]
pub struct BaselineAnswer {
    /// Candidate ids that survived filtering (pre-verification).
    pub candidates: Vec<GraphId>,
    /// Verified matches with their subgraph distance, ordered by
    /// `(distance, id)`.
    pub matches: Vec<(GraphId, usize)>,
    /// Filtering time.
    pub filter_time: Duration,
    /// Verification time.
    pub verify_time: Duration,
}

impl BaselineAnswer {
    /// Total query evaluation time — the SRT of a traditional-paradigm
    /// system (the whole query is processed after Run).
    pub fn srt(&self) -> Duration {
        self.filter_time + self.verify_time
    }
}

/// Trait implemented by every substructure-similarity baseline.
pub trait SimilaritySearch {
    /// Short display name used in the experiment tables (`GR`, `SG`, `DVP`).
    fn name(&self) -> &'static str;

    /// Index footprint.
    fn footprint(&self) -> IndexFootprint;

    /// Evaluate a similarity query with distance threshold `sigma`.
    fn search(&self, q: &Graph, sigma: usize, db: &GraphDb) -> BaselineAnswer;
}

/// Precomputed verifier: the connected subgraphs of `q` per level,
/// largest-first, each with a reusable VF2 match order.
pub struct LevelwiseVerifier {
    q_size: usize,
    /// levels[i] = distinct connected subgraphs with `q_size - i` edges
    /// (i = 0 is the full query), deduplicated by CAM code.
    levels: Vec<Vec<(Graph, MatchOrder)>>,
}

impl LevelwiseVerifier {
    /// Build for distances `0..=sigma`.
    pub fn new(q: &Graph, sigma: usize) -> Self {
        let q_size = q.edge_count();
        let by_size = connected_edge_subsets_by_size(q).expect("queries are at most 64 edges");
        let mut levels = Vec::new();
        for dist in 0..=sigma.min(q_size.saturating_sub(1)) {
            let size = q_size - dist;
            let mut seen = std::collections::HashSet::new();
            let mut frags = Vec::new();
            for &mask in &by_size[size] {
                let (sub, _) = q.edge_subgraph(&mask_edges(mask));
                let cam = prague_graph::cam_code(&sub);
                if seen.insert(cam) {
                    let order = MatchOrder::new(&sub);
                    frags.push((sub, order));
                }
            }
            levels.push(frags);
        }
        LevelwiseVerifier { q_size, levels }
    }

    /// The subgraph distance of `g` from the query, if within the verifier's
    /// sigma: the smallest `dist` whose level has an embedding.
    pub fn distance(&self, g: &Graph) -> Option<usize> {
        for (dist, frags) in self.levels.iter().enumerate() {
            if frags
                .iter()
                .any(|(sub, order)| is_subgraph_with_order(sub, g, order))
            {
                return Some(dist);
            }
        }
        None
    }

    /// Query size.
    pub fn q_size(&self) -> usize {
        self.q_size
    }
}

/// Verify a candidate list and produce the ranked answer tail.
pub fn verify_candidates(
    verifier: &LevelwiseVerifier,
    candidates: &[GraphId],
    db: &GraphDb,
) -> Vec<(GraphId, usize)> {
    let mut out: Vec<(GraphId, usize)> = candidates
        .iter()
        .filter_map(|&id| verifier.distance(db.graph(id)).map(|d| (id, d)))
        .collect();
    out.sort_by_key(|&(id, d)| (d, id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prague_graph::Label;

    fn path(labels: &[u16]) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(Label(l))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn levelwise_distance_matches_mccs() {
        let q = path(&[0, 1, 0, 1]);
        let graphs = [
            path(&[0, 1, 0, 1, 0]), // contains q: dist 0
            path(&[0, 1, 0]),       // dist 1
            path(&[0, 1]),          // dist 2
            path(&[2, 2]),          // no overlap
        ];
        let v = LevelwiseVerifier::new(&q, 2);
        let expect = [Some(0), Some(1), Some(2), None];
        for (g, want) in graphs.iter().zip(expect) {
            assert_eq!(v.distance(g), want);
            if let Some(d) = want {
                assert_eq!(prague_graph::mccs::subgraph_distance(&q, g).unwrap(), d);
            }
        }
    }

    #[test]
    fn verify_candidates_ranks() {
        let q = path(&[0, 1, 0]);
        let mut db = GraphDb::new();
        db.push(path(&[0, 1])); // dist 1
        db.push(path(&[0, 1, 0, 1])); // dist 0
        db.push(path(&[5, 5])); // miss
        let v = LevelwiseVerifier::new(&q, 1);
        let got = verify_candidates(&v, &[0, 1, 2], &db);
        assert_eq!(got, vec![(1, 0), (0, 1)]);
    }
}
