//! GBLENDER (the paper's predecessor system, SIGMOD 2010) — exact-only
//! blended query processing.
//!
//! GBLENDER shares PRAGUE's action-aware indexes but keeps only the *most
//! recent* candidate set `R_q`: after each new edge it refines `R_q` by
//! intersecting it with the FSG ids of the newly formed frequent fragment or
//! DIFs. The two behavioral consequences the paper measures against:
//!
//! * **no similarity support** — once `R_q` is empty it stays empty and the
//!   final answer is the empty set;
//! * **expensive modification** — deleting edge `e_d` formulated at step `d`
//!   forces recomputation of `R_q` from the earliest step, replaying every
//!   surviving edge.

use prague_graph::enumerate::{connected_edge_subsets_by_size, mask_edges};
use prague_graph::{cam_code, GraphDb, GraphId};
use prague_index::{A2fIndex, A2iIndex};
use prague_spig::{EdgeLabelId, QueryError, VisualQuery};
use std::time::{Duration, Instant};

/// A GBLENDER formulation session.
pub struct GBlenderSession<'a> {
    db: &'a GraphDb,
    a2f: &'a A2fIndex,
    a2i: &'a A2iIndex,
    query: VisualQuery,
    rq: Vec<GraphId>,
}

/// Outcome of one GBLENDER step.
#[derive(Debug, Clone)]
pub struct GbStep {
    /// `|R_q|` after this step.
    pub candidate_count: usize,
    /// Per-step processing time.
    pub step_time: Duration,
}

impl<'a> GBlenderSession<'a> {
    /// Start a session over the shared action-aware indexes.
    pub fn new(db: &'a GraphDb, a2f: &'a A2fIndex, a2i: &'a A2iIndex) -> Self {
        GBlenderSession {
            db,
            a2f,
            a2i,
            query: VisualQuery::new(),
            rq: Vec::new(),
        }
    }

    /// Drop a node on the canvas.
    pub fn add_node(&mut self, label: prague_graph::Label) -> prague_spig::VNodeId {
        self.query.add_node(label)
    }

    /// Draw an edge; refine `R_q` using only the current fragment and the
    /// previous `R_q`.
    pub fn add_edge(
        &mut self,
        u: prague_spig::VNodeId,
        v: prague_spig::VNodeId,
    ) -> Result<GbStep, QueryError> {
        self.query.add_edge(u, v)?;
        let t0 = Instant::now();
        let prev = std::mem::take(&mut self.rq);
        self.rq = self.refine(Some(prev));
        Ok(GbStep {
            candidate_count: self.rq.len(),
            step_time: t0.elapsed(),
        })
    }

    /// Compute the candidate set for the current fragment. `prev` is the
    /// preceding step's `R_q` (GBLENDER's only retained state); `None` means
    /// "first edge" (no constraint yet).
    fn refine(&self, prev: Option<Vec<GraphId>>) -> Vec<GraphId> {
        let g = self.query.graph();
        let cam = cam_code(g);
        // Whole fragment indexed: exact ids, no history needed.
        if let Some(fid) = self.a2f.lookup(&cam) {
            return self.a2f.fsg_ids(fid).expect("DF store readable").to_vec();
        }
        if let Some(did) = self.a2i.lookup(&cam) {
            return self.a2i.fsg_ids(did).to_vec();
        }
        if g.edge_count() == 1 {
            // unindexed single edge: zero support
            return Vec::new();
        }
        // Otherwise: intersect the previous R_q with the FSG ids of every
        // indexed largest proper subgraph and every DIF formed by the newest
        // edge (GBLENDER's per-step discriminative information).
        let mut lists: Vec<Vec<GraphId>> = Vec::new();
        let levels = connected_edge_subsets_by_size(g).expect("small query");
        let size = g.edge_count();
        for &mask in &levels[size - 1] {
            let (sub, _) = g.edge_subgraph(&mask_edges(mask));
            if let Some(fid) = self.a2f.lookup(&cam_code(&sub)) {
                lists.push(self.a2f.fsg_ids(fid).expect("DF store readable").to_vec());
            }
        }
        // DIFs among subgraphs containing the newest edge slot.
        let newest = self
            .query
            .newest_edge()
            .and_then(|l| self.query.slot_of(l))
            .expect("non-empty query");
        let anchored = prague_graph::enumerate::connected_edge_subsets_containing(
            g,
            newest as prague_graph::EdgeId,
        )
        .expect("small query");
        for level in anchored.iter().skip(1) {
            for &mask in level {
                let (sub, _) = g.edge_subgraph(&mask_edges(mask));
                if let Some(did) = self.a2i.lookup(&cam_code(&sub)) {
                    lists.push(self.a2i.fsg_ids(did).to_vec());
                }
            }
        }
        let base = match prev {
            Some(p) => p,
            None => (0..self.db.len() as GraphId).collect(),
        };
        let mut acc = base;
        for list in lists {
            let mut out = Vec::with_capacity(acc.len());
            let (mut i, mut j) = (0usize, 0usize);
            let b = list.as_slice();
            while i < acc.len() && j < b.len() {
                match acc[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(acc[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            acc = out;
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Delete an edge — GBLENDER must *replay every step from the
    /// beginning* to rebuild `R_q` (this is the modification cost the
    /// paper's Tables IV/V contrast against PRAGUE's SPIG update).
    pub fn delete_edge(&mut self, edge: EdgeLabelId) -> Result<Duration, QueryError> {
        self.query.delete_edge(edge)?;
        let t0 = Instant::now();
        // Replay the surviving edges in formulation order on a fresh canvas,
        // running the per-step refinement at every prefix — exactly the
        // recomputation the paper charges GBLENDER for.
        let mut replay = VisualQuery::new();
        for n in 0..self.query.canvas_node_count() as u32 {
            replay.add_node(self.query.node_label(n).expect("canvas node"));
        }
        let mut rq: Option<Vec<GraphId>> = None;
        for (_, u, v) in self.query.live_edges() {
            replay
                .add_edge(u, v)
                .expect("edges were valid on the canvas");
            let helper = GBlenderSession {
                db: self.db,
                a2f: self.a2f,
                a2i: self.a2i,
                query: replay.clone(),
                rq: Vec::new(),
            };
            rq = Some(helper.refine(rq));
        }
        self.rq = rq.unwrap_or_default();
        Ok(t0.elapsed())
    }

    /// Final results: exact verification of `R_q` (empty when the query has
    /// no exact match — GBLENDER's similarity blind spot).
    pub fn run(&self) -> (Vec<GraphId>, Duration) {
        let t0 = Instant::now();
        let g = self.query.graph();
        let cam = cam_code(g);
        let verification_free = self.a2f.lookup(&cam).is_some() || self.a2i.lookup(&cam).is_some();
        let results = if verification_free {
            self.rq.clone()
        } else {
            let order = prague_graph::vf2::MatchOrder::new(g);
            self.rq
                .iter()
                .copied()
                .filter(|&id| {
                    prague_graph::vf2::is_subgraph_with_order(g, self.db.graph(id), &order)
                })
                .collect()
        };
        (results, t0.elapsed())
    }

    /// Current candidate set.
    pub fn candidates(&self) -> &[GraphId] {
        &self.rq
    }

    /// The query canvas.
    pub fn query(&self) -> &VisualQuery {
        &self.query
    }
}
