//! SIGMA (Mongiovì, Di Natale, Giugno, Pulvirenti, Ferro, Sharan 2010):
//! set-cover-based inexact graph matching over the shared feature index.
//!
//! Where Grafil bounds the *damage* σ deletions can do, SIGMA lower-bounds
//! the *number of deletions needed* to explain a graph's missing features:
//! each missing feature embedding must be destroyed by deleting one of the
//! query edges it covers, so the minimum number of edge deletions is at
//! least the size of a minimum set cover of the missing embeddings by
//! query edges. SIGMA approximates the bound greedily (picking the edge
//! covering the most still-unexplained misses); if even that bound exceeds
//! σ the graph is pruned.

use crate::common::{verify_candidates, BaselineAnswer, LevelwiseVerifier, SimilaritySearch};
use crate::features::{FeatureIndex, QueryProfile};
use prague_graph::{Graph, GraphDb, GraphId};
use prague_index::IndexFootprint;
use std::time::Instant;

/// The SIGMA searcher, borrowing the shared feature index.
pub struct Sigma<'a> {
    index: &'a FeatureIndex,
}

impl<'a> Sigma<'a> {
    /// Wrap the shared feature index.
    pub fn new(index: &'a FeatureIndex) -> Self {
        Sigma { index }
    }

    /// Greedy set-cover lower bound: the number of edges needed to cover
    /// `missing` feature-embedding units, where each query edge can explain
    /// at most its hit count, taken greedily in descending order.
    ///
    /// (A true lower bound on deletions: any set of `k` deleted edges
    /// explains at most the sum of the `k` largest per-edge hit counts, so
    /// if that sum is below `missing` more than `k` deletions are needed.)
    pub fn cover_lower_bound(edge_hits: &[usize], missing: u32) -> usize {
        if missing == 0 {
            return 0;
        }
        let mut hits = edge_hits.to_vec();
        hits.sort_unstable_by(|a, b| b.cmp(a));
        let mut remaining = missing as i64;
        for (k, &h) in hits.iter().enumerate() {
            remaining -= h as i64;
            if remaining <= 0 {
                return k + 1;
            }
        }
        // even deleting every edge cannot explain the misses
        hits.len() + 1
    }

    fn filter(&self, profile: &QueryProfile, sigma: usize, db_len: usize) -> Vec<GraphId> {
        let misses = self.index.misses_per_graph(profile);
        (0..db_len as GraphId)
            .filter(|&id| Self::cover_lower_bound(&profile.edge_hits, misses[id as usize]) <= sigma)
            .collect()
    }
}

impl SimilaritySearch for Sigma<'_> {
    fn name(&self) -> &'static str {
        "SG"
    }

    fn footprint(&self) -> IndexFootprint {
        self.index.footprint()
    }

    fn search(&self, q: &Graph, sigma: usize, db: &GraphDb) -> BaselineAnswer {
        let t0 = Instant::now();
        let profile = self.index.query_profile(q);
        let candidates = self.filter(&profile, sigma, db.len());
        let filter_time = t0.elapsed();

        let t1 = Instant::now();
        let verifier = LevelwiseVerifier::new(q, sigma);
        let matches = verify_candidates(&verifier, &candidates, db);
        BaselineAnswer {
            candidates,
            matches,
            filter_time,
            verify_time: t1.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureIndexConfig;
    use crate::grafil::Grafil;
    use prague_graph::Label;
    use prague_mining::mine_classified;

    fn path(labels: &[u16]) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(Label(l))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn setup() -> (GraphDb, FeatureIndex) {
        let mut db = GraphDb::new();
        for _ in 0..4 {
            db.push(path(&[0, 1, 0, 1, 0]));
        }
        db.push(path(&[0, 0, 0, 0]));
        db.push(path(&[2, 2]));
        let result = mine_classified(&db, 0.3, 4);
        let idx = FeatureIndex::build(&result, &db, &FeatureIndexConfig::default());
        (db, idx)
    }

    #[test]
    fn no_false_negatives_and_exact_answers() {
        let (db, idx) = setup();
        let sg = Sigma::new(&idx);
        let q = path(&[0, 1, 0, 1]);
        for sigma in 0..3 {
            let answer = sg.search(&q, sigma, &db);
            let want: Vec<(GraphId, usize)> = db
                .iter()
                .filter_map(|(id, g)| {
                    let d = prague_graph::mccs::subgraph_distance(&q, g).unwrap();
                    (d <= sigma && d < q.edge_count()).then_some((id, d))
                })
                .collect();
            for &(id, _) in &want {
                assert!(answer.candidates.contains(&id), "SIGMA pruned a match");
            }
            let mut got = answer.matches.clone();
            got.sort_unstable();
            let mut want_sorted = want;
            want_sorted.sort_unstable();
            assert_eq!(got, want_sorted, "sigma={sigma}");
        }
    }

    #[test]
    fn sigma_filter_at_least_as_tight_as_grafil() {
        // The set-cover bound dominates the additive bound: SIGMA's
        // candidate set is a subset of Grafil's.
        let (db, idx) = setup();
        let q = path(&[0, 1, 0, 1]);
        for sigma in 0..3 {
            let sg = Sigma::new(&idx).search(&q, sigma, &db);
            let gr = Grafil::new(&idx).search(&q, sigma, &db);
            for id in &sg.candidates {
                assert!(gr.candidates.contains(id));
            }
        }
    }

    #[test]
    fn cover_bound_basics() {
        assert_eq!(Sigma::cover_lower_bound(&[5, 3, 1], 0), 0);
        assert_eq!(Sigma::cover_lower_bound(&[5, 3, 1], 4), 1);
        assert_eq!(Sigma::cover_lower_bound(&[5, 3, 1], 6), 2);
        assert_eq!(Sigma::cover_lower_bound(&[5, 3, 1], 9), 3);
        // more misses than all edges can explain
        assert_eq!(Sigma::cover_lower_bound(&[5, 3, 1], 100), 4);
    }
}
