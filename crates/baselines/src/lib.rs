//! # prague-baselines
//!
//! Faithful reimplementations of the systems the PRAGUE paper compares
//! against (Section VIII):
//!
//! * [`gblender`] — GBLENDER, the exact-only blending predecessor that keeps
//!   a single most-recent candidate set (Fig 9(a), Tables IV/V);
//! * [`features`] + [`grafil`] — Grafil's feature–graph matrix with the
//!   additive per-edge feature-miss bound;
//! * [`sigma`] — SIGMA's set-cover lower bound over the same feature index;
//! * [`distvp`] — DistVP's σ-dependent path-gram index (large, σ-scaling);
//! * [`common`] — the shared traditional-paradigm answer shape and
//!   MCCS-by-exact-subgraph-isomorphism verification.
//!
//! All three similarity baselines are *traditional paradigm*: the whole
//! query is evaluated only after Run, so their SRT is the full filter +
//! verify time.

#![warn(missing_docs)]

pub mod common;
pub mod distvp;
pub mod features;
pub mod gblender;
pub mod grafil;
pub mod sigma;

pub use common::{BaselineAnswer, LevelwiseVerifier, SimilaritySearch};
pub use distvp::DistVp;
pub use features::{FeatureIndex, FeatureIndexConfig};
pub use gblender::GBlenderSession;
pub use grafil::Grafil;
pub use sigma::Sigma;
