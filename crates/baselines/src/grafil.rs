//! Grafil (Yan, Yu, Han — SIGMOD 2005): feature-based substructure
//! similarity search in the traditional paradigm.
//!
//! Filtering principle: deleting one query edge destroys at most the
//! feature embeddings covering that edge, so σ deletions destroy at most
//! `d_max = Σ of the σ largest per-edge hit counts` embeddings. A data
//! graph whose feature-miss total exceeds `d_max` cannot be within distance
//! σ and is pruned. Surviving candidates are verified by reduction to
//! exact subgraph-isomorphism tests over relaxed query subgraphs.

use crate::common::{verify_candidates, BaselineAnswer, LevelwiseVerifier, SimilaritySearch};
use crate::features::FeatureIndex;
use prague_graph::{Graph, GraphDb, GraphId};
use prague_index::IndexFootprint;
use std::time::Instant;

/// The Grafil searcher, borrowing the shared feature index.
pub struct Grafil<'a> {
    index: &'a FeatureIndex,
}

impl<'a> Grafil<'a> {
    /// Wrap the shared feature index.
    pub fn new(index: &'a FeatureIndex) -> Self {
        Grafil { index }
    }

    /// Grafil's bound on destroyable feature embeddings: the sum of the σ
    /// largest per-edge hit counts.
    pub fn max_feature_misses(edge_hits: &[usize], sigma: usize) -> u32 {
        let mut hits = edge_hits.to_vec();
        hits.sort_unstable_by(|a, b| b.cmp(a));
        hits.iter().take(sigma).map(|&h| h as u32).sum()
    }
}

impl SimilaritySearch for Grafil<'_> {
    fn name(&self) -> &'static str {
        "GR"
    }

    fn footprint(&self) -> IndexFootprint {
        self.index.footprint()
    }

    fn search(&self, q: &Graph, sigma: usize, db: &GraphDb) -> BaselineAnswer {
        let t0 = Instant::now();
        let profile = self.index.query_profile(q);
        let misses = self.index.misses_per_graph(&profile);
        let d_max = Self::max_feature_misses(&profile.edge_hits, sigma);
        let candidates: Vec<GraphId> = (0..db.len() as GraphId)
            .filter(|&id| misses[id as usize] <= d_max)
            .collect();
        let filter_time = t0.elapsed();

        let t1 = Instant::now();
        let verifier = LevelwiseVerifier::new(q, sigma);
        let matches = verify_candidates(&verifier, &candidates, db);
        BaselineAnswer {
            candidates,
            matches,
            filter_time,
            verify_time: t1.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureIndexConfig;
    use prague_graph::Label;
    use prague_mining::mine_classified;

    fn path(labels: &[u16]) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(Label(l))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn setup() -> (GraphDb, FeatureIndex) {
        let mut db = GraphDb::new();
        for _ in 0..4 {
            db.push(path(&[0, 1, 0, 1, 0]));
        }
        db.push(path(&[0, 0, 0, 0]));
        db.push(path(&[2, 2]));
        let result = mine_classified(&db, 0.3, 4);
        let idx = FeatureIndex::build(&result, &db, &FeatureIndexConfig::default());
        (db, idx)
    }

    #[test]
    fn no_false_negatives() {
        let (db, idx) = setup();
        let gr = Grafil::new(&idx);
        let q = path(&[0, 1, 0, 1]);
        for sigma in 0..3 {
            let answer = gr.search(&q, sigma, &db);
            // oracle
            for (id, g) in db.iter() {
                let d = prague_graph::mccs::subgraph_distance(&q, g).unwrap();
                if d <= sigma && d < q.edge_count() {
                    assert!(
                        answer.candidates.contains(&id),
                        "Grafil pruned a true match (sigma={sigma}, id={id}, d={d})"
                    );
                    assert!(answer.matches.contains(&(id, d)));
                }
            }
            // verified matches are exactly the oracle answers
            let want: Vec<(GraphId, usize)> = db
                .iter()
                .filter_map(|(id, g)| {
                    let d = prague_graph::mccs::subgraph_distance(&q, g).unwrap();
                    (d <= sigma && d < q.edge_count()).then_some((id, d))
                })
                .collect();
            let mut got = answer.matches.clone();
            got.sort_unstable();
            let mut want_sorted = want;
            want_sorted.sort_unstable();
            assert_eq!(got, want_sorted);
        }
    }

    #[test]
    fn filter_prunes_unrelated_graphs() {
        let (db, idx) = setup();
        let gr = Grafil::new(&idx);
        let q = path(&[0, 1, 0, 1]);
        let answer = gr.search(&q, 1, &db);
        // the all-2s graph shares nothing; with a populated feature index it
        // must be pruned
        assert!(
            !answer.candidates.contains(&5),
            "unrelated graph survived Grafil filter"
        );
    }

    #[test]
    fn dmax_is_sum_of_top_sigma() {
        assert_eq!(Grafil::max_feature_misses(&[5, 1, 3], 2), 8);
        assert_eq!(Grafil::max_feature_misses(&[5, 1, 3], 0), 0);
        assert_eq!(Grafil::max_feature_misses(&[2], 4), 2);
    }
}
