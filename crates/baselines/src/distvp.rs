//! DistVP (Shang, Lin, Zhang, Yu et al., SIGMOD 2010 — "Connected
//! Substructure Similarity Search"): a σ-dependent path-gram index.
//!
//! DistVP indexes, for every data graph, the multiset of label paths up to
//! `σ + 1` edges (vertex-partition path grams). The index therefore grows
//! quickly with σ — the behaviour behind the paper's Table II, where DVP's
//! index is 5–25× PRAGUE's and scales with the distance threshold. The
//! filter bounds how many query path-grams σ edge deletions can destroy;
//! survivors all require verification (the paper notes the DVP executable
//! reports only `R_ver`).

use crate::common::{verify_candidates, BaselineAnswer, LevelwiseVerifier, SimilaritySearch};
use prague_graph::{Graph, GraphDb, GraphId, NodeId};
use prague_index::IndexFootprint;
use std::collections::HashMap;
use std::time::Instant;

/// Canonical label path: node/edge labels along the path, direction
/// normalized to the lexicographically smaller reading.
type PathKey = Vec<u16>;

/// Per-gram count cap (as with feature counts, exact large counts add no
/// filtering power).
const COUNT_CAP: u32 = 64;

/// Cap on distinct path enumeration work per graph; beyond it the graph is
/// indexed with whatever grams were collected (dense synthetic graphs are
/// where the real DistVP executable gave up entirely).
const MAX_PATHS_PER_GRAPH: usize = 200_000;

/// The DistVP index for one σ.
pub struct DistVp {
    sigma: usize,
    /// gram -> sparse (graph id, count), ascending by id.
    grams: HashMap<PathKey, Vec<(GraphId, u32)>>,
    db_len: usize,
    /// Total stored entries (for footprint reporting).
    entries: usize,
}

/// Enumerate label paths of `1..=max_edges` edges from every node of `g`,
/// invoking `emit` once per directed path; the caller normalizes direction.
fn enumerate_paths(g: &Graph, max_edges: usize, emit: &mut dyn FnMut(&[u16]) -> bool) {
    let mut seq: Vec<u16> = Vec::with_capacity(2 * max_edges + 1);
    let mut visited = vec![false; g.node_count()];
    for start in 0..g.node_count() as NodeId {
        seq.clear();
        seq.push(g.label(start).0);
        visited[start as usize] = true;
        if !extend_path(g, start, max_edges, &mut seq, &mut visited, emit) {
            visited[start as usize] = false;
            return;
        }
        visited[start as usize] = false;
    }
}

fn extend_path(
    g: &Graph,
    at: NodeId,
    remaining: usize,
    seq: &mut Vec<u16>,
    visited: &mut [bool],
    emit: &mut dyn FnMut(&[u16]) -> bool,
) -> bool {
    if remaining == 0 {
        return true;
    }
    for &(nb, eid) in g.neighbors(at) {
        if visited[nb as usize] {
            continue;
        }
        seq.push(g.edge(eid).label.0);
        seq.push(g.label(nb).0);
        visited[nb as usize] = true;
        let keep_going = emit(seq) && extend_path(g, nb, remaining - 1, seq, visited, emit);
        visited[nb as usize] = false;
        seq.pop();
        seq.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Normalize a directed path reading to its canonical (min of the two
/// directions) form.
fn canonical(seq: &[u16]) -> PathKey {
    let rev: Vec<u16> = seq.iter().rev().copied().collect();
    if rev < seq.to_vec() {
        rev
    } else {
        seq.to_vec()
    }
}

/// Path-gram multiset of one graph (canonical keys; each undirected path
/// counted once).
fn gram_counts(g: &Graph, max_edges: usize) -> HashMap<PathKey, u32> {
    let mut raw: HashMap<PathKey, u32> = HashMap::new();
    let mut budget = MAX_PATHS_PER_GRAPH;
    enumerate_paths(g, max_edges, &mut |seq| {
        let key = canonical(seq);
        *raw.entry(key).or_insert(0) += 1;
        budget -= 1;
        budget > 0
    });
    // every undirected path was visited from both ends: halve the counts
    // (palindromic readings may come out odd; round up) and cap.
    for v in raw.values_mut() {
        *v = v.div_ceil(2).min(COUNT_CAP);
    }
    raw
}

impl DistVp {
    /// Build the index for distance threshold `sigma`.
    pub fn build(db: &GraphDb, sigma: usize) -> Self {
        let max_edges = sigma + 1;
        let mut grams: HashMap<PathKey, Vec<(GraphId, u32)>> = HashMap::new();
        let mut entries = 0usize;
        for (gid, g) in db.iter() {
            for (key, count) in gram_counts(g, max_edges) {
                grams.entry(key).or_default().push((gid, count));
                entries += 1;
            }
        }
        DistVp {
            sigma,
            grams,
            db_len: db.len(),
            entries,
        }
    }

    /// The σ this index was built for.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of distinct grams.
    pub fn gram_count(&self) -> usize {
        self.grams.len()
    }
}

impl SimilaritySearch for DistVp {
    fn name(&self) -> &'static str {
        "DVP"
    }

    fn footprint(&self) -> IndexFootprint {
        let mut memory = 0usize;
        for (key, postings) in &self.grams {
            memory += std::mem::size_of::<PathKey>() + key.len() * 2 + postings.len() * 8 + 32;
            // hash-map entry overhead
        }
        let _ = self.entries;
        IndexFootprint {
            memory_bytes: memory,
            disk_bytes: 0,
        }
    }

    fn search(&self, q: &Graph, sigma: usize, db: &GraphDb) -> BaselineAnswer {
        let sigma = sigma.min(self.sigma);
        let t0 = Instant::now();
        let max_edges = self.sigma + 1;
        // query grams + per-edge gram hits (for the deletion damage bound)
        let q_grams = gram_counts(q, max_edges);
        // per-edge hits: enumerate again attributing each path to its edges
        let mut edge_hits = vec![0usize; q.edge_count()];
        {
            // a path of k edges covers k query edges; to attribute we walk
            // paths again, tracking edge ids
            let mut stack_edges: Vec<u32> = Vec::new();
            let mut visited = vec![false; q.node_count()];
            fn walk(
                g: &Graph,
                at: NodeId,
                remaining: usize,
                visited: &mut [bool],
                stack_edges: &mut Vec<u32>,
                edge_hits: &mut [usize],
            ) {
                if remaining == 0 {
                    return;
                }
                for &(nb, eid) in g.neighbors(at) {
                    if visited[nb as usize] {
                        continue;
                    }
                    stack_edges.push(eid);
                    for &e in stack_edges.iter() {
                        edge_hits[e as usize] += 1;
                    }
                    visited[nb as usize] = true;
                    walk(g, nb, remaining - 1, visited, stack_edges, edge_hits);
                    visited[nb as usize] = false;
                    stack_edges.pop();
                }
            }
            for start in 0..q.node_count() as NodeId {
                visited[start as usize] = true;
                walk(
                    q,
                    start,
                    max_edges,
                    &mut visited,
                    &mut stack_edges,
                    &mut edge_hits,
                );
                visited[start as usize] = false;
            }
            // both directions were counted
            for h in &mut edge_hits {
                *h = h.div_ceil(2);
            }
        }
        let mut hits_sorted = edge_hits.clone();
        hits_sorted.sort_unstable_by(|a, b| b.cmp(a));
        let d_max: u32 = hits_sorted.iter().take(sigma).map(|&h| h as u32).sum();

        // misses per graph
        let total_q: u32 = q_grams.values().sum();
        let mut misses = vec![total_q; self.db_len];
        for (key, &cnt_q) in &q_grams {
            if let Some(postings) = self.grams.get(key) {
                for &(gid, cnt_g) in postings {
                    misses[gid as usize] -= cnt_q.min(cnt_g);
                }
            }
        }
        let candidates: Vec<GraphId> = (0..self.db_len as GraphId)
            .filter(|&id| misses[id as usize] <= d_max)
            .collect();
        let filter_time = t0.elapsed();

        let t1 = Instant::now();
        let verifier = LevelwiseVerifier::new(q, sigma);
        let matches = verify_candidates(&verifier, &candidates, db);
        BaselineAnswer {
            candidates,
            matches,
            filter_time,
            verify_time: t1.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prague_graph::Label;

    fn path(labels: &[u16]) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(Label(l))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn db() -> GraphDb {
        let mut d = GraphDb::new();
        for _ in 0..3 {
            d.push(path(&[0, 1, 0, 1, 0]));
        }
        d.push(path(&[0, 0, 0, 0]));
        d.push(path(&[2, 2]));
        d
    }

    #[test]
    fn gram_counts_of_a_path() {
        // P3 all-zero: 1-edge grams: 2x (0,_,0); 2-edge grams: 1x
        let g = path(&[0, 0, 0]);
        let grams = gram_counts(&g, 2);
        let one_edge: PathKey = vec![0, 0, 0]; // l, e, l
        let two_edge: PathKey = vec![0, 0, 0, 0, 0];
        assert_eq!(grams.get(&one_edge), Some(&2));
        assert_eq!(grams.get(&two_edge), Some(&1));
    }

    #[test]
    fn no_false_negatives() {
        let d = db();
        let q = path(&[0, 1, 0, 1]);
        for sigma in 0..3 {
            let dvp = DistVp::build(&d, sigma);
            let answer = dvp.search(&q, sigma, &d);
            let want: Vec<(GraphId, usize)> = d
                .iter()
                .filter_map(|(id, g)| {
                    let dist = prague_graph::mccs::subgraph_distance(&q, g).unwrap();
                    (dist <= sigma && dist < q.edge_count()).then_some((id, dist))
                })
                .collect();
            for &(id, _) in &want {
                assert!(
                    answer.candidates.contains(&id),
                    "DVP pruned a match (σ={sigma})"
                );
            }
            let mut got = answer.matches.clone();
            got.sort_unstable();
            let mut want_sorted = want;
            want_sorted.sort_unstable();
            assert_eq!(got, want_sorted);
        }
    }

    #[test]
    fn index_grows_with_sigma() {
        let d = db();
        let sizes: Vec<usize> = (0..4)
            .map(|s| DistVp::build(&d, s).footprint().memory_bytes)
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1], "DVP index should grow with sigma: {sizes:?}");
        }
        assert!(sizes[3] > sizes[0]);
    }

    #[test]
    fn canonicalization_merges_directions() {
        assert_eq!(canonical(&[1, 0, 2]), vec![1, 0, 2]);
        assert_eq!(canonical(&[2, 0, 1]), vec![1, 0, 2]);
    }
}
