//! The feature–graph matrix index shared by Grafil and SIGMA (the paper
//! notes "GR and SG use the same indexing scheme").
//!
//! Features are frequent fragments up to a size cap; the index materializes
//! Grafil's *feature–graph matrix* — a dense `|F| × |D|` table of (capped)
//! embedding counts, exactly as the original system does (which is why the
//! paper's Fig 10(a) shows the GR/SG index growing linearly with `|D|`).
//! Both filters reason about how many feature embeddings at most σ edge
//! deletions can destroy — they differ only in the bound (Grafil: additive
//! per-edge bound; SIGMA: set-cover lower bound).

use prague_graph::vf2::{count_embeddings, MatchOrder};
use prague_graph::{Graph, GraphDb, GraphId};
use prague_index::IndexFootprint;
use prague_mining::MiningResult;
use std::time::Instant;

/// Embedding counts are capped: beyond this the exact count adds no
/// filtering power but costs unbounded enumeration time.
pub const COUNT_CAP: usize = 64;

/// One feature: a frequent fragment with a reusable match order.
#[derive(Debug)]
pub struct Feature {
    /// The fragment graph.
    pub graph: Graph,
    /// Reusable match order for counting embeddings in queries.
    pub order: MatchOrder,
}

/// The feature–graph matrix.
#[derive(Debug)]
pub struct FeatureIndex {
    features: Vec<Feature>,
    /// Dense row-major counts: `counts[f * db_len + g]`.
    counts: Vec<u16>,
    db_len: usize,
}

/// Build parameters.
#[derive(Debug, Clone)]
pub struct FeatureIndexConfig {
    /// Largest feature size (edges). Grafil's published setup uses small
    /// features; large ones cost more to count than they prune.
    pub max_feature_edges: usize,
}

impl Default for FeatureIndexConfig {
    fn default() -> Self {
        FeatureIndexConfig {
            max_feature_edges: 3,
        }
    }
}

impl FeatureIndex {
    /// Build from the mined frequent set (reusing PRAGUE's mining pass, as
    /// the experiments do for fairness) and the database.
    pub fn build(result: &MiningResult, db: &GraphDb, config: &FeatureIndexConfig) -> Self {
        let mut features = Vec::new();
        let mut counts: Vec<u16> = Vec::new();
        for frag in &result.frequent {
            if frag.size() > config.max_feature_edges {
                continue;
            }
            let order = MatchOrder::new(&frag.graph);
            let row_start = counts.len();
            counts.resize(row_start + db.len(), 0);
            for &gid in &frag.fsg_ids {
                let c = count_embeddings(&frag.graph, db.graph(gid), COUNT_CAP);
                counts[row_start + gid as usize] = c as u16;
            }
            features.push(Feature {
                graph: frag.graph.clone(),
                order,
            });
        }
        FeatureIndex {
            features,
            counts,
            db_len: db.len(),
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the index holds no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The features.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Embedding count of feature `f` in graph `gid`.
    pub fn count(&self, f: usize, gid: GraphId) -> u16 {
        self.counts[f * self.db_len + gid as usize]
    }

    /// Database size the index was built over.
    pub fn db_len(&self) -> usize {
        self.db_len
    }

    /// Index footprint (the dense matrix dominates, as in Grafil).
    pub fn footprint(&self) -> IndexFootprint {
        let mut memory = self.counts.len() * std::mem::size_of::<u16>();
        for f in &self.features {
            memory += std::mem::size_of::<Feature>()
                + f.graph.node_count() * 2
                + f.graph.edge_count() * std::mem::size_of::<prague_graph::Edge>();
        }
        IndexFootprint {
            memory_bytes: memory,
            disk_bytes: 0,
        }
    }

    /// For a query `q`: per-feature embedding counts in `q`, plus for every
    /// query edge the number of feature embeddings covering it (the
    /// edge-hit profile both filters bound with).
    pub fn query_profile(&self, q: &Graph) -> QueryProfile {
        let t0 = Instant::now();
        let mut counts = Vec::with_capacity(self.features.len());
        let mut edge_hits = vec![0usize; q.edge_count()];
        // which features' embeddings cover each edge, for the set-cover bound
        let mut edge_cover: Vec<Vec<usize>> = vec![Vec::new(); q.edge_count()];
        for (fi, f) in self.features.iter().enumerate() {
            if f.graph.edge_count() > q.edge_count() {
                counts.push(0);
                continue;
            }
            let embeddings = prague_graph::vf2::find_embeddings(&f.graph, q, COUNT_CAP);
            counts.push(embeddings.len() as u32);
            for emb in &embeddings {
                for e in f.graph.edges() {
                    let qu = emb[e.u as usize];
                    let qv = emb[e.v as usize];
                    if let Some(eid) = q.find_edge(qu, qv) {
                        edge_hits[eid as usize] += 1;
                        edge_cover[eid as usize].push(fi);
                    }
                }
            }
        }
        QueryProfile {
            counts,
            edge_hits,
            edge_cover,
            profile_time: t0.elapsed(),
        }
    }

    /// Total feature misses per data graph:
    /// `misses(G) = Σ_f max(0, cnt_q(f) − cnt_G(f))`.
    pub fn misses_per_graph(&self, profile: &QueryProfile) -> Vec<u32> {
        let total_q: u32 = profile.counts.iter().sum();
        let mut misses = vec![total_q; self.db_len];
        for (f, &cnt_q) in profile.counts.iter().enumerate() {
            if cnt_q == 0 {
                continue;
            }
            let row = &self.counts[f * self.db_len..(f + 1) * self.db_len];
            for (m, &cnt_g) in misses.iter_mut().zip(row) {
                *m -= cnt_q.min(u32::from(cnt_g));
            }
        }
        misses
    }
}

/// Query-side feature information.
#[derive(Debug)]
pub struct QueryProfile {
    /// Embedding count of each feature in the query (capped).
    pub counts: Vec<u32>,
    /// For each query edge: number of feature embeddings covering it.
    pub edge_hits: Vec<usize>,
    /// For each query edge: the feature indices of the covering embeddings
    /// (with multiplicity).
    pub edge_cover: Vec<Vec<usize>>,
    /// Time to compute the profile.
    pub profile_time: std::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use prague_graph::Label;
    use prague_mining::mine_classified;

    fn path(labels: &[u16]) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(Label(l))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn db() -> GraphDb {
        let mut d = GraphDb::new();
        for _ in 0..3 {
            d.push(path(&[0, 1, 0, 1]));
        }
        d.push(path(&[0, 0, 0]));
        d.push(path(&[1, 1]));
        d
    }

    #[test]
    fn counts_match_direct_vf2() {
        let db = db();
        let result = mine_classified(&db, 0.3, 4);
        let idx = FeatureIndex::build(&result, &db, &FeatureIndexConfig::default());
        assert!(!idx.is_empty());
        for (fi, f) in idx.features().iter().enumerate() {
            for (gid, g) in db.iter() {
                let direct = count_embeddings(&f.graph, g, COUNT_CAP);
                assert_eq!(idx.count(fi, gid) as usize, direct);
            }
        }
    }

    #[test]
    fn matrix_is_dense_over_db() {
        let db = db();
        let result = mine_classified(&db, 0.3, 4);
        let idx = FeatureIndex::build(&result, &db, &FeatureIndexConfig::default());
        assert!(idx.footprint().memory_bytes >= idx.len() * db.len() * 2);
        assert_eq!(idx.db_len(), db.len());
    }

    #[test]
    fn misses_zero_for_containing_graph() {
        let db = db();
        let result = mine_classified(&db, 0.3, 4);
        let idx = FeatureIndex::build(&result, &db, &FeatureIndexConfig::default());
        // query = a subgraph of graph 0: graph 0 must have zero misses
        let q = path(&[0, 1, 0]);
        let profile = idx.query_profile(&q);
        let misses = idx.misses_per_graph(&profile);
        assert_eq!(misses[0], 0, "containing graph has no feature misses");
    }

    #[test]
    fn edge_hits_cover_all_embeddings() {
        let db = db();
        let result = mine_classified(&db, 0.3, 4);
        let idx = FeatureIndex::build(&result, &db, &FeatureIndexConfig::default());
        let q = path(&[0, 1, 0]);
        let profile = idx.query_profile(&q);
        // each edge-hit entry corresponds to an edge_cover entry
        for (hits, cover) in profile.edge_hits.iter().zip(&profile.edge_cover) {
            assert_eq!(*hits, cover.len());
        }
        // total edge hits = sum over features of embeddings * feature size
        let total: usize = profile.edge_hits.iter().sum();
        let expect: usize = idx
            .features()
            .iter()
            .zip(&profile.counts)
            .map(|(f, &c)| c as usize * f.graph.edge_count())
            .sum();
        assert_eq!(total, expect);
    }
}
