//! # prague-datagen
//!
//! Dataset and workload generation for the PRAGUE experiments:
//!
//! * [`molecules`] — an AIDS-Antiviral-like molecular graph generator
//!   (the real dataset is not redistributable; see DESIGN.md);
//! * [`graphgen`] — a GraphGen-style synthetic generator (the paper's
//!   10K–80K family: avg 30 edges, density 0.1);
//! * [`queries`] — query workloads: paper-shape Q1–Q8 specs, guaranteed
//!   best-/worst-case similarity query derivation, containment queries and
//!   formulation-sequence generation.

#![warn(missing_docs)]

pub mod graphgen;
pub mod molecules;
pub mod queries;

pub use graphgen::{
    generate as graphgen_generate, generate_streaming as graphgen_generate_streaming,
    GraphGenConfig,
};
pub use molecules::{generate as molecules_generate, MoleculeConfig, MoleculeDataset};
pub use queries::{
    derive_containment_query, derive_similarity_query, DeriveConfig, QueryKind, QuerySpec,
};
