//! GraphGen-style synthetic dataset generator.
//!
//! The paper's synthetic datasets come from the GraphGen tool shipped with
//! FG-Index: `|D|` graphs with a target average edge count (30) and average
//! density 0.1 (density = 2|E| / (|V|·(|V|−1))), with node labels drawn
//! uniformly from a configurable alphabet. This module reproduces those
//! knobs: sizes are jittered around the mean, the node count is derived
//! from the density target, and each graph is a uniform random connected
//! simple graph (spanning tree + random extra edges).

use prague_graph::{Graph, GraphDb, Label, LabelTable, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GraphGenConfig {
    /// Number of graphs `|D|`.
    pub graphs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Average edge count per graph (paper: 30).
    pub avg_edges: f64,
    /// Average density `2|E| / (|V|(|V|−1))` (paper: 0.1).
    pub density: f64,
    /// Distinct node labels (uniform).
    pub label_count: u16,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            graphs: 10_000,
            seed: 0x5EED_1000,
            avg_edges: 30.0,
            density: 0.1,
            label_count: 20,
        }
    }
}

/// Derived from density: `|V|(|V|−1) = 2|E| / density`.
fn node_count_for(edges: usize, density: f64) -> usize {
    let target = 2.0 * edges as f64 / density;
    // solve v^2 - v - target = 0
    let v = (1.0 + (1.0 + 4.0 * target).sqrt()) / 2.0;
    (v.round() as usize).max(2)
}

fn generate_graph(rng: &mut SmallRng, config: &GraphGenConfig) -> Graph {
    // jitter edges ±40% around the mean
    let jitter = 0.6 + 0.8 * rng.random::<f64>();
    let mut edges = ((config.avg_edges * jitter).round() as usize).max(1);
    let mut nodes = node_count_for(edges, config.density);
    // a connected simple graph needs |V|−1 ≤ |E| ≤ |V|(|V|−1)/2
    if edges < nodes - 1 {
        nodes = edges + 1;
    }
    let max_edges = nodes * (nodes - 1) / 2;
    edges = edges.min(max_edges);

    let mut g = Graph::new();
    for _ in 0..nodes {
        g.add_node(Label(rng.random_range(0..config.label_count)));
    }
    // random spanning tree
    for i in 1..nodes {
        let p = rng.random_range(0..i) as NodeId;
        g.add_edge(i as NodeId, p).expect("tree edges are simple");
    }
    // extra random edges
    let mut attempts = 0usize;
    while g.edge_count() < edges && attempts < edges * 20 {
        attempts += 1;
        let a = rng.random_range(0..nodes) as NodeId;
        let b = rng.random_range(0..nodes) as NodeId;
        if a != b && g.find_edge(a, b).is_none() {
            g.add_edge(a, b).expect("checked simple");
        }
    }
    g
}

/// Generate a synthetic dataset; returns the database and a label table
/// with names `"L0"`, `"L1"`, ….
pub fn generate(config: &GraphGenConfig) -> (GraphDb, LabelTable) {
    let labels = LabelTable::from_names((0..config.label_count).map(|i| format!("L{i}")));
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut db = GraphDb::new();
    for _ in 0..config.graphs {
        db.push(generate_graph(&mut rng, config));
    }
    (db, labels)
}

/// Generate a synthetic dataset in batches of at most `batch` graphs,
/// delivering each batch to `sink` as it is produced. One RNG sequence
/// drives the whole run, so the concatenation of the batches is
/// *identical* to one [`generate`] call with the same config — streaming
/// is purely a peak-memory knob. The million-graph `exp_fig10m_scale`
/// profile uses it to fill a [`GraphDb`] without ever holding a second
/// copy of the dataset in flight.
pub fn generate_streaming(
    config: &GraphGenConfig,
    batch: usize,
    mut sink: impl FnMut(GraphDb),
) -> LabelTable {
    let labels = LabelTable::from_names((0..config.label_count).map(|i| format!("L{i}")));
    let batch = batch.max(1);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut remaining = config.graphs;
    while remaining > 0 {
        let take = remaining.min(batch);
        let mut db = GraphDb::new();
        for _ in 0..take {
            db.push(generate_graph(&mut rng, config));
        }
        remaining -= take;
        sink(db);
    }
    labels
}

/// Generate the paper's family of synthetic datasets (10K–80K) scaled by
/// `scale` (1.0 = paper scale): sizes `⌈scale·{10K, 20K, 40K, 60K, 80K}⌉`.
pub fn paper_family(scale: f64, label_count: u16) -> Vec<(String, GraphDb)> {
    [10_000usize, 20_000, 40_000, 60_000, 80_000]
        .iter()
        .map(|&base| {
            let n = ((base as f64 * scale).round() as usize).max(100);
            let (db, _) = generate(&GraphGenConfig {
                graphs: n,
                seed: 0x5EED ^ base as u64,
                label_count,
                ..Default::default()
            });
            (format!("{}K", base / 1000), db)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = GraphGenConfig {
            graphs: 10,
            ..Default::default()
        };
        let (a, _) = generate(&cfg);
        let (b, _) = generate(&cfg);
        for (x, y) in a.graphs().iter().zip(b.graphs()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn streaming_batches_match_the_monolithic_run() {
        let cfg = GraphGenConfig {
            graphs: 37,
            ..Default::default()
        };
        let (whole, whole_labels) = generate(&cfg);
        for batch in [1usize, 5, 16, 64] {
            let mut streamed = GraphDb::new();
            let labels = generate_streaming(&cfg, batch, |db| {
                for (_, g) in db.iter() {
                    streamed.push(g.clone());
                }
            });
            assert_eq!(labels.len(), whole_labels.len());
            assert_eq!(streamed.len(), whole.len(), "batch {batch}");
            for (a, b) in whole.graphs().iter().zip(streamed.graphs()) {
                assert_eq!(a, b, "batch {batch}");
            }
        }
    }

    #[test]
    fn average_edges_near_target() {
        let (db, _) = generate(&GraphGenConfig {
            graphs: 300,
            ..Default::default()
        });
        let avg = db.avg_edges();
        assert!((24.0..36.0).contains(&avg), "avg edges {avg}");
    }

    #[test]
    fn density_near_target() {
        let (db, _) = generate(&GraphGenConfig {
            graphs: 200,
            ..Default::default()
        });
        let densities: Vec<f64> = db
            .graphs()
            .iter()
            .map(|g| {
                let v = g.node_count() as f64;
                2.0 * g.edge_count() as f64 / (v * (v - 1.0))
            })
            .collect();
        let avg = densities.iter().sum::<f64>() / densities.len() as f64;
        assert!((0.05..0.2).contains(&avg), "avg density {avg}");
    }

    #[test]
    fn connected_and_labeled() {
        let cfg = GraphGenConfig {
            graphs: 50,
            label_count: 5,
            ..Default::default()
        };
        let (db, labels) = generate(&cfg);
        assert_eq!(labels.len(), 5);
        for (_, g) in db.iter() {
            assert!(g.is_connected());
            for &l in g.labels() {
                assert!(l.0 < 5);
            }
        }
    }

    #[test]
    fn family_scales() {
        let family = paper_family(0.01, 10);
        assert_eq!(family.len(), 5);
        assert_eq!(family[0].0, "10K");
        assert_eq!(family[0].1.len(), 100);
        assert_eq!(family[4].1.len(), 800);
    }
}
