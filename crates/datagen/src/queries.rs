//! Query workloads: the paper's Q1–Q8 style queries and deterministic
//! derivation of best-/worst-case similarity queries from a dataset.
//!
//! The paper's queries were drawn by human participants against the AIDS
//! and GraphGen datasets (Figure 8), chosen so that each query has *no
//! exact match* from a known formulation step onward ("Similar" status),
//! with Q1 a best case (all candidates verification-free) and Q2–Q8 worst
//! cases (all candidates need verification). Because our datasets are
//! generated substitutes, the harness derives queries with exactly those
//! guaranteed properties from the data itself:
//!
//! * **best case** — the query is an indexed *frequent* fragment plus one
//!   edge whose label pair never occurs in `D`: every live similarity level
//!   consists of indexed fragments → all candidates land in `R_free`;
//! * **worst case** — the query is a large *infrequent* (support ≥ 1)
//!   subgraph of a real data graph plus one absent-pair edge: the high
//!   SPIG levels are NIFs → candidates land in `R_ver`.

use prague_graph::vf2::{is_subgraph_with_order, MatchOrder};
use prague_graph::{Graph, GraphDb, GraphId, Label};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A query specification: node labels plus edges in default formulation
/// order (every prefix of the edge list induces a connected graph).
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Display name (e.g. `"Q3"`).
    pub name: String,
    /// Canvas node labels.
    pub node_labels: Vec<Label>,
    /// Edges as canvas-node index pairs, in default formulation order.
    pub edges: Vec<(u32, u32)>,
    /// Step (1-based) at which the fragment first has no exact match, if
    /// known (the paper's bold edge). `None` for pure containment queries.
    pub similar_at: Option<usize>,
}

impl QuerySpec {
    /// Materialize the full query graph.
    pub fn graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.node_labels.iter().copied());
        for &(u, v) in &self.edges {
            g.add_edge(u, v).expect("query specs are simple graphs");
        }
        g
    }

    /// Query size (edge count).
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// Check the spec invariant: simple and connected at every prefix.
    pub fn validate(&self) -> bool {
        let mut g = Graph::with_nodes(self.node_labels.iter().copied());
        let mut wired: HashSet<u32> = HashSet::new();
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            if g.add_edge(u, v).is_err() {
                return false;
            }
            if i == 0 {
                wired.insert(u);
                wired.insert(v);
            } else {
                if !wired.contains(&u) && !wired.contains(&v) {
                    return false; // disconnected prefix
                }
                wired.insert(u);
                wired.insert(v);
            }
        }
        !self.edges.is_empty()
    }

    /// Generate `count` alternative valid formulation sequences (edge-index
    /// permutations whose every prefix is connected) — used by the paper's
    /// Table III sequence-variation study. The default order is *not*
    /// included.
    pub fn alternative_sequences(&self, count: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out: Vec<Vec<usize>> = Vec::new();
        let default: Vec<usize> = (0..self.edges.len()).collect();
        let mut guard = 0usize;
        while out.len() < count && guard < count * 200 {
            guard += 1;
            let seq = self.random_valid_sequence(&mut rng);
            if seq != default && !out.contains(&seq) {
                out.push(seq);
            }
        }
        out
    }

    fn random_valid_sequence(&self, rng: &mut SmallRng) -> Vec<usize> {
        let n = self.edges.len();
        let mut seq = Vec::with_capacity(n);
        let mut used = vec![false; n];
        let mut wired: HashSet<u32> = HashSet::new();
        for step in 0..n {
            let frontier: Vec<usize> = (0..n)
                .filter(|&i| {
                    if used[i] {
                        return false;
                    }
                    if step == 0 {
                        return true;
                    }
                    let (u, v) = self.edges[i];
                    wired.contains(&u) || wired.contains(&v)
                })
                .collect();
            let &pick = &frontier[rng.random_range(0..frontier.len())];
            used[pick] = true;
            let (u, v) = self.edges[pick];
            wired.insert(u);
            wired.insert(v);
            seq.push(pick);
        }
        seq
    }
}

/// A label pair `(a, b)` (unordered) that never occurs as an edge in `D`.
/// Falls back to a pair with a fresh label id beyond the dataset alphabet.
pub fn absent_label_pair(db: &GraphDb) -> (Label, Label) {
    let mut present: HashSet<(u16, u16)> = HashSet::new();
    let mut max_label = 0u16;
    for (_, g) in db.iter() {
        for e in g.edges() {
            let (a, b) = (g.label(e.u).0, g.label(e.v).0);
            present.insert((a.min(b), a.max(b)));
            max_label = max_label.max(a).max(b);
        }
    }
    for a in 0..=max_label {
        for b in a..=max_label {
            if !present.contains(&(a, b)) {
                return (Label(a), Label(b));
            }
        }
    }
    (Label(0), Label(max_label + 1))
}

/// A random connected edge-subgraph of `g` with `size` edges, returned as
/// edge indices in growth order (every prefix connected). `None` if `g` is
/// smaller than `size`.
pub fn random_connected_edges(g: &Graph, size: usize, rng: &mut SmallRng) -> Option<Vec<u32>> {
    if g.edge_count() < size {
        return None;
    }
    let start = rng.random_range(0..g.edge_count()) as u32;
    let mut chosen = vec![start];
    let mut in_set: HashSet<u32> = chosen.iter().copied().collect();
    while chosen.len() < size {
        // boundary edges
        let mut boundary: Vec<u32> = Vec::new();
        for &e in &chosen {
            let edge = g.edge(e);
            for &n in &[edge.u, edge.v] {
                for &(_, ne) in g.neighbors(n) {
                    if !in_set.contains(&ne) && !boundary.contains(&ne) {
                        boundary.push(ne);
                    }
                }
            }
        }
        if boundary.is_empty() {
            return None; // component exhausted
        }
        let pick = boundary[rng.random_range(0..boundary.len())];
        in_set.insert(pick);
        chosen.push(pick);
    }
    Some(chosen)
}

/// Build a [`QuerySpec`] from a host graph and an edge list in growth order.
fn spec_from_edges(name: &str, g: &Graph, edges: &[u32]) -> QuerySpec {
    let mut node_map: Vec<Option<u32>> = vec![None; g.node_count()];
    let mut node_labels: Vec<Label> = Vec::new();
    let mut spec_edges: Vec<(u32, u32)> = Vec::new();
    for &e in edges {
        let edge = g.edge(e);
        for &n in &[edge.u, edge.v] {
            if node_map[n as usize].is_none() {
                node_map[n as usize] = Some(node_labels.len() as u32);
                node_labels.push(g.label(n));
            }
        }
        spec_edges.push((
            node_map[edge.u as usize].unwrap(),
            node_map[edge.v as usize].unwrap(),
        ));
    }
    QuerySpec {
        name: name.to_string(),
        node_labels,
        edges: spec_edges,
        similar_at: None,
    }
}

/// Support of `q` in `db` (number of containing graphs), with a cheap
/// edge-label-multiset prefilter; stops at `limit` if non-zero.
pub fn support_of(q: &Graph, db: &GraphDb, limit: usize) -> usize {
    let order = MatchOrder::new(q);
    let q_pairs = q.edge_label_multiset();
    let mut count = 0usize;
    for (_, g) in db.iter() {
        if g.edge_count() < q.edge_count() {
            continue;
        }
        // prefilter: every query edge-label triple must appear in g
        let g_pairs = g.edge_label_multiset();
        if !multiset_contains(&g_pairs, &q_pairs) {
            continue;
        }
        if is_subgraph_with_order(q, g, &order) {
            count += 1;
            if limit != 0 && count >= limit {
                return count;
            }
        }
    }
    count
}

fn multiset_contains<T: Ord>(haystack: &[T], needle: &[T]) -> bool {
    let mut i = 0usize;
    for n in needle {
        while i < haystack.len() && haystack[i] < *n {
            i += 1;
        }
        if i >= haystack.len() || haystack[i] != *n {
            return false;
        }
        i += 1;
    }
    true
}

/// Kind of derived similarity query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// All similarity candidates verification-free (paper's Q1).
    BestCase,
    /// All similarity candidates need verification (paper's Q2–Q8).
    WorstCase,
}

/// Parameters for query derivation.
#[derive(Debug, Clone)]
pub struct DeriveConfig {
    /// Total query size (edges), including the forced-miss edge.
    pub size: usize,
    /// Best or worst case.
    pub kind: QueryKind,
    /// RNG seed.
    pub seed: u64,
}

/// Derive a similarity query of `cfg.size` edges with a guaranteed-empty
/// final exact candidate set.
///
/// `frequent` supplies mined frequent fragment graphs for the best case
/// (pass the A²F contents); the worst case only needs `db`.
pub fn derive_similarity_query(
    db: &GraphDb,
    frequent: &[Graph],
    cfg: &DeriveConfig,
    name: &str,
) -> Option<QuerySpec> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let prefix_size = cfg.size - 1;
    let (absent_a, absent_b) = absent_label_pair(db);

    for _attempt in 0..200 {
        let mut spec = match cfg.kind {
            QueryKind::BestCase => {
                // an indexed frequent fragment of the right size
                let candidates: Vec<&Graph> = frequent
                    .iter()
                    .filter(|g| g.edge_count() == prefix_size)
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let g = candidates[rng.random_range(0..candidates.len())];
                let edges = random_connected_edges(g, prefix_size, &mut rng)?;
                spec_from_edges(name, g, &edges)
            }
            QueryKind::WorstCase => {
                // an infrequent (but existing) subgraph of a data graph
                let gid = rng.random_range(0..db.len()) as GraphId;
                let g = db.graph(gid);
                match random_connected_edges(g, prefix_size, &mut rng) {
                    Some(edges) => spec_from_edges(name, g, &edges),
                    None => continue,
                }
            }
        };
        // For the worst case, require the prefix to be infrequent-but-present
        // (support in [1, 5% of |D|]) so its SPIG vertex is a NIF.
        if cfg.kind == QueryKind::WorstCase {
            let limit = (db.len() / 20).max(2);
            let sup = support_of(&spec.graph(), db, limit);
            if sup == 0 || sup >= limit {
                continue;
            }
        }
        // Attach the absent-pair edge: one endpoint must exist in the prefix
        // with the right label, the other is a fresh node.
        let host_label = if spec.node_labels.contains(&absent_a) {
            absent_a
        } else if spec.node_labels.contains(&absent_b) {
            absent_b
        } else {
            continue;
        };
        let partner = if host_label == absent_a {
            absent_b
        } else {
            absent_a
        };
        let host = spec
            .node_labels
            .iter()
            .position(|&l| l == host_label)
            .unwrap() as u32;
        let fresh = spec.node_labels.len() as u32;
        spec.node_labels.push(partner);
        spec.edges.push((host, fresh));
        spec.similar_at = Some(spec.edges.len());
        debug_assert!(spec.validate());
        return Some(spec);
    }
    None
}

/// Derive a pure subgraph-*containment* query (non-empty final answer):
/// a random connected subgraph of a data graph.
pub fn derive_containment_query(
    db: &GraphDb,
    size: usize,
    seed: u64,
    name: &str,
) -> Option<QuerySpec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..100 {
        let gid = rng.random_range(0..db.len()) as GraphId;
        let g = db.graph(gid);
        if let Some(edges) = random_connected_edges(g, size, &mut rng) {
            let spec = spec_from_edges(name, g, &edges);
            debug_assert!(spec.validate());
            return Some(spec);
        }
    }
    None
}

/// Paper-shape queries over the molecular alphabet (Figure 8,
/// best-effort reconstructions — the published figure is partially
/// illegible). Labels refer to [`crate::molecules::ATOMS`] indices:
/// C=0, O=1, N=2, S=3, Hg=9.
pub fn paper_shape_queries() -> Vec<QuerySpec> {
    let c = Label(0);
    let o = Label(1);
    let n = Label(2);
    let s = Label(3);
    let hg = Label(9);
    vec![
        // Q1: carbon/sulfur ring with a tail, 9 edges
        QuerySpec {
            name: "Q1".into(),
            node_labels: vec![c, c, s, c, c, c, s, c, c],
            edges: vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0), // 5-ring closed at step 5
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
            similar_at: Some(4),
        },
        // Q2: branched carbon skeleton with N, 8 edges
        QuerySpec {
            name: "Q2".into(),
            node_labels: vec![c, c, c, n, c, c, c, c, c],
            edges: vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (1, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
            similar_at: Some(5),
        },
        // Q3: Hg-O chain into an N-rich tail, 8 edges
        QuerySpec {
            name: "Q3".into(),
            node_labels: vec![hg, o, c, n, n, n, n, c, n],
            edges: vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
            similar_at: Some(4),
        },
        // Q4: carbon ring with O and N substituents, 9 edges
        QuerySpec {
            name: "Q4".into(),
            node_labels: vec![c, c, c, c, c, c, o, n, hg],
            edges: vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0), // 6-ring
                (0, 6),
                (2, 7),
                (7, 8),
            ],
            similar_at: Some(7),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{generate, GraphGenConfig};

    fn tiny_db() -> GraphDb {
        let (db, _) = generate(&GraphGenConfig {
            graphs: 120,
            avg_edges: 12.0,
            label_count: 6,
            seed: 99,
            ..Default::default()
        });
        db
    }

    #[test]
    fn paper_shapes_are_valid() {
        for q in paper_shape_queries() {
            assert!(q.validate(), "{} invalid", q.name);
            assert!(q.graph().is_connected());
            assert!(q.size() <= 10);
        }
    }

    #[test]
    fn alternative_sequences_are_valid_and_distinct() {
        let q = &paper_shape_queries()[0];
        let seqs = q.alternative_sequences(3, 42);
        assert!(!seqs.is_empty());
        for seq in &seqs {
            // permutation of 0..n
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..q.size()).collect::<Vec<_>>());
            // every prefix connected
            let mut wired: HashSet<u32> = HashSet::new();
            for (i, &e) in seq.iter().enumerate() {
                let (u, v) = q.edges[e];
                if i > 0 {
                    assert!(wired.contains(&u) || wired.contains(&v));
                }
                wired.insert(u);
                wired.insert(v);
            }
        }
    }

    #[test]
    fn absent_pair_is_really_absent() {
        let db = tiny_db();
        let (a, b) = absent_label_pair(&db);
        for (_, g) in db.iter() {
            for e in g.edges() {
                let (x, y) = (g.label(e.u), g.label(e.v));
                assert!(!((x, y) == (a, b) || (x, y) == (b, a)));
            }
        }
    }

    #[test]
    fn derived_worst_case_has_no_exact_match_but_near_misses() {
        let db = tiny_db();
        let spec = derive_similarity_query(
            &db,
            &[],
            &DeriveConfig {
                size: 6,
                kind: QueryKind::WorstCase,
                seed: 7,
            },
            "W",
        )
        .expect("derivable");
        assert!(spec.validate());
        assert_eq!(spec.size(), 6);
        // full query has no exact match
        assert_eq!(support_of(&spec.graph(), &db, 1), 0);
        // prefix (all but the forced edge) does
        let mut prefix = spec.clone();
        prefix.edges.pop();
        prefix.node_labels.pop();
        assert!(support_of(&prefix.graph(), &db, 1) >= 1);
    }

    #[test]
    fn derived_containment_query_matches() {
        let db = tiny_db();
        let spec = derive_containment_query(&db, 5, 3, "C").expect("derivable");
        assert!(spec.validate());
        assert!(support_of(&spec.graph(), &db, 1) >= 1);
    }

    #[test]
    fn random_connected_edges_are_connected() {
        let db = tiny_db();
        let mut rng = SmallRng::seed_from_u64(5);
        let g = db.graph(0);
        for size in 1..=g.edge_count().min(6) {
            let edges = random_connected_edges(g, size, &mut rng).unwrap();
            assert_eq!(edges.len(), size);
            assert!(g.edge_subset_is_connected(&edges));
            // growth order: every prefix connected
            for k in 1..=size {
                assert!(g.edge_subset_is_connected(&edges[..k]));
            }
        }
    }

    #[test]
    fn support_of_agrees_with_plain_vf2() {
        let db = tiny_db();
        let q = derive_containment_query(&db, 3, 11, "S").unwrap().graph();
        let brute = db
            .iter()
            .filter(|(_, g)| prague_graph::vf2::is_subgraph(&q, g))
            .count();
        assert_eq!(support_of(&q, &db, 0), brute);
    }
}
