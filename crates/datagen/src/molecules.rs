//! AIDS-like molecular graph generator.
//!
//! The paper evaluates on the AIDS Antiviral dataset (40 000 compound
//! graphs, average 25 vertices / 27 edges, maximum 222 / 251). That dataset
//! is not redistributable here, so this module generates a *statistically
//! similar* substitute: node labels are atom symbols with a realistic
//! frequency skew (carbon-dominated), structure is built from chains and
//! rings under valence limits, and the size distribution is heavy-tailed
//! with the paper's mean and max. What the algorithms actually consume —
//! a rich frequent-fragment lattice over a small alphabet plus a long
//! infrequent tail — is preserved (see DESIGN.md, substitution 1).

use prague_graph::{Graph, GraphDb, Label, LabelTable, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Atom table used by the generator: `(symbol, weight, max valence)`.
/// Weights approximate the atom distribution of small organic molecules.
pub const ATOMS: &[(&str, f64, usize)] = &[
    ("C", 0.720, 4),
    ("O", 0.095, 2),
    ("N", 0.080, 3),
    ("S", 0.035, 2),
    ("Cl", 0.020, 1),
    ("F", 0.015, 1),
    ("P", 0.012, 3),
    ("Br", 0.010, 1),
    ("I", 0.008, 1),
    ("Hg", 0.005, 2),
];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MoleculeConfig {
    /// Number of graphs to generate.
    pub graphs: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Mean node count (paper: 25).
    pub mean_nodes: f64,
    /// Maximum node count (paper: 222).
    pub max_nodes: usize,
    /// Probability that a growth step attaches a ring instead of a chain
    /// atom (rings are what make fragment lattices interesting).
    pub ring_prob: f64,
}

impl Default for MoleculeConfig {
    fn default() -> Self {
        MoleculeConfig {
            graphs: 1000,
            seed: 0xA1D5_2012,
            mean_nodes: 25.0,
            max_nodes: 222,
            ring_prob: 0.25,
        }
    }
}

/// Output of the generator: the database and the shared label table whose
/// ids the graphs use.
#[derive(Debug)]
pub struct MoleculeDataset {
    /// The generated graphs.
    pub db: GraphDb,
    /// Atom-symbol labels.
    pub labels: LabelTable,
}

/// Sample an atom label, honoring the weight table.
fn sample_atom(rng: &mut SmallRng) -> (usize, usize) {
    let total: f64 = ATOMS.iter().map(|a| a.1).sum();
    let mut x = rng.random::<f64>() * total;
    for (i, &(_, w, val)) in ATOMS.iter().enumerate() {
        if x < w {
            return (i, val);
        }
        x -= w;
    }
    (0, ATOMS[0].2)
}

/// Heavy-tailed size sample: exponential around the mean, clamped.
fn sample_size(rng: &mut SmallRng, mean: f64, max: usize) -> usize {
    // mixture: mostly near the mean, occasional large molecules
    let base = if rng.random::<f64>() < 0.92 {
        // triangular-ish around the mean
        let u: f64 = rng.random::<f64>() + rng.random::<f64>();
        (mean * u).round()
    } else {
        // tail
        let u: f64 = rng.random::<f64>();
        (mean * (2.0 + 6.0 * u * u)).round()
    };
    (base as usize).clamp(3, max)
}

/// Generate one molecule with roughly `target_nodes` atoms.
fn generate_molecule(rng: &mut SmallRng, target_nodes: usize, ring_prob: f64) -> Graph {
    let mut g = Graph::new();
    let mut valence: Vec<usize> = Vec::new();

    let add_atom = |g: &mut Graph, valence: &mut Vec<usize>, rng: &mut SmallRng| -> NodeId {
        let (atom, val) = sample_atom(rng);
        let id = g.add_node(Label(atom as u16));
        valence.push(val);
        id
    };

    // seed atom (every atom in the table can bond at least once)
    add_atom(&mut g, &mut valence, rng);

    while g.node_count() < target_nodes {
        // pick an attachment point with spare valence
        let candidates: Vec<NodeId> = (0..g.node_count() as NodeId)
            .filter(|&n| g.degree(n) < valence[n as usize])
            .collect();
        let Some(&anchor) = candidates.get(rng.random_range(0..candidates.len().max(1))) else {
            break; // fully saturated molecule
        };
        if candidates.is_empty() {
            break;
        }

        if rng.random::<f64>() < ring_prob && g.node_count() + 5 <= target_nodes {
            // attach a 5- or 6-ring (mostly carbon, maybe one heteroatom)
            let ring_size = if rng.random::<f64>() < 0.7 { 6 } else { 5 };
            let mut ring: Vec<NodeId> = vec![anchor];
            for i in 0..ring_size - 1 {
                let id = if i == 2 && rng.random::<f64>() < 0.2 {
                    // heteroatom position
                    let (atom, val) = sample_atom(rng);
                    let id = g.add_node(Label(atom as u16));
                    valence.push(val.max(2)); // must close the ring
                    id
                } else {
                    let id = g.add_node(Label(0)); // carbon
                    valence.push(4);
                    id
                };
                ring.push(id);
            }
            let ok = ring.windows(2).all(|w| g.find_edge(w[0], w[1]).is_none());
            if ok {
                for w in 0..ring.len() {
                    let u = ring[w];
                    let v = ring[(w + 1) % ring.len()];
                    let _ = g.add_edge(u, v);
                }
            }
        } else {
            // chain growth: one new atom bonded to the anchor
            let (atom, val) = sample_atom(rng);
            let id = g.add_node(Label(atom as u16));
            valence.push(val);
            let _ = g.add_edge(anchor, id);
        }
    }

    // occasionally close one extra ring between existing atoms
    if g.node_count() >= 6 && rng.random::<f64>() < 0.3 {
        for _ in 0..4 {
            let a = rng.random_range(0..g.node_count()) as NodeId;
            let b = rng.random_range(0..g.node_count()) as NodeId;
            if a != b
                && g.find_edge(a, b).is_none()
                && g.degree(a) < valence[a as usize]
                && g.degree(b) < valence[b as usize]
            {
                let _ = g.add_edge(a, b);
                break;
            }
        }
    }

    // keep only the main connected component (ring attachment always bonds
    // to the anchor so the graph is connected by construction, but be safe)
    debug_assert!(g.is_connected());
    g
}

/// Generate a molecular dataset.
pub fn generate(config: &MoleculeConfig) -> MoleculeDataset {
    let labels = LabelTable::from_names(ATOMS.iter().map(|a| a.0));
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut db = GraphDb::new();
    for _ in 0..config.graphs {
        let target = sample_size(&mut rng, config.mean_nodes, config.max_nodes);
        let mut g = generate_molecule(&mut rng, target, config.ring_prob);
        if g.edge_count() == 0 {
            // degenerate single-atom molecule: force a C-C bond
            let a = g.add_node(Label(0));
            let b = if g.node_count() >= 2 {
                0
            } else {
                g.add_node(Label(0))
            };
            let _ = g.add_edge(a, b);
        }
        db.push(g);
    }
    MoleculeDataset { db, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = MoleculeConfig {
            graphs: 20,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        for (x, y) in a.db.graphs().iter().zip(b.db.graphs()) {
            assert_eq!(x, y);
        }
        let c = generate(&MoleculeConfig { seed: 7, ..cfg });
        assert!(a.db.graphs().iter().zip(c.db.graphs()).any(|(x, y)| x != y));
    }

    #[test]
    fn statistics_resemble_aids() {
        let ds = generate(&MoleculeConfig {
            graphs: 300,
            ..Default::default()
        });
        let avg_nodes: f64 = ds
            .db
            .graphs()
            .iter()
            .map(|g| g.node_count() as f64)
            .sum::<f64>()
            / ds.db.len() as f64;
        let avg_edges = ds.db.avg_edges();
        assert!((15.0..35.0).contains(&avg_nodes), "avg nodes {avg_nodes}");
        assert!(
            avg_edges >= avg_nodes - 2.0,
            "edges {avg_edges} vs nodes {avg_nodes}"
        );
        let max_nodes = ds.db.graphs().iter().map(Graph::node_count).max().unwrap();
        assert!(max_nodes <= 222);
    }

    #[test]
    fn graphs_are_connected_and_simple() {
        let ds = generate(&MoleculeConfig {
            graphs: 100,
            ..Default::default()
        });
        for (_, g) in ds.db.iter() {
            assert!(g.is_connected());
            assert!(g.edge_count() >= 1);
            // simplicity is enforced by the model; spot-check degrees vs valence
            for n in 0..g.node_count() as NodeId {
                assert!(g.degree(n) <= 6);
            }
        }
    }

    #[test]
    fn carbon_dominates() {
        let ds = generate(&MoleculeConfig {
            graphs: 200,
            ..Default::default()
        });
        let mut counts = vec![0usize; ATOMS.len()];
        for (_, g) in ds.db.iter() {
            for &l in g.labels() {
                counts[l.0 as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert!(
            counts[0] as f64 / total as f64 > 0.5,
            "carbon share too low"
        );
        assert_eq!(ds.labels.name(Label(0)), Some("C"));
    }
}
