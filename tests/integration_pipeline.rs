//! End-to-end pipeline tests: generate a dataset, mine + index, formulate
//! queries edge-at-a-time, and check PRAGUE's answers against brute-force
//! oracles.

#[path = "common/mod.rs"]
mod common;

use common::{oracle_containment, oracle_similarity, replay};
use prague::{PragueSystem, QueryResults, StepStatus, SystemParams};
use prague_datagen::{
    derive_containment_query, derive_similarity_query, DeriveConfig, MoleculeConfig, QueryKind,
};
use prague_graph::Graph;

fn build_system() -> PragueSystem {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 250,
        mean_nodes: 12.0,
        ..Default::default()
    });
    PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.15,
            beta: 3,
            max_fragment_edges: 7,
            ..Default::default()
        },
    )
    .expect("system builds")
}

#[test]
fn containment_query_matches_oracle() {
    let system = build_system();
    for seed in 0..6u64 {
        let Some(spec) = derive_containment_query(system.db(), 4, seed, "C") else {
            continue;
        };
        let mut session = system.session(2);
        let steps = replay(&mut session, &spec);
        // every step of a containment query has candidates
        for s in &steps {
            assert!(
                s.candidate_count > 0,
                "containment query lost candidates at step e{}",
                s.edge
            );
        }
        let outcome = session.run().expect("runnable");
        match outcome.results {
            QueryResults::Exact(ids) => {
                assert_eq!(
                    ids,
                    oracle_containment(&spec.graph(), system.db()),
                    "seed {seed}"
                );
            }
            QueryResults::Similar(_) => panic!("containment query fell back to similarity"),
        }
    }
}

#[test]
fn candidates_never_miss_answers() {
    // R_q is a superset of the true answer at every step.
    let system = build_system();
    let spec = derive_containment_query(system.db(), 5, 42, "C").expect("derivable");
    let mut session = system.session(2);
    let nodes: Vec<_> = spec
        .node_labels
        .iter()
        .map(|&l| session.add_node(l))
        .collect();
    for &(u, v) in &spec.edges {
        session
            .add_edge(nodes[u as usize], nodes[v as usize])
            .unwrap();
        let truth = oracle_containment(session.query().graph(), system.db());
        let rq = session.exact_candidates();
        for id in &truth {
            assert!(rq.contains(id), "candidate set missed graph {id}");
        }
    }
}

#[test]
fn similarity_query_matches_oracle() {
    let system = build_system();
    let frequent: Vec<Graph> = (0..system.indexes().a2f.fragment_count() as u32)
        .map(|id| system.indexes().a2f.fragment(id).unwrap())
        .collect();
    let sigma = 2;
    let mut tested = 0;
    for (seed, kind) in [
        (1u64, QueryKind::WorstCase),
        (2, QueryKind::WorstCase),
        (3, QueryKind::BestCase),
    ] {
        let Some(spec) = derive_similarity_query(
            system.db(),
            &frequent,
            &DeriveConfig {
                size: 5,
                kind,
                seed,
            },
            "S",
        ) else {
            continue;
        };
        tested += 1;
        let mut session = system.session(sigma);
        let steps = replay(&mut session, &spec);
        // the final step must report Similar (no exact match, by construction)
        assert_eq!(steps.last().unwrap().status, StepStatus::Similar);
        session.choose_similarity().unwrap();
        let outcome = session.run().expect("runnable");
        let QueryResults::Similar(results) = outcome.results else {
            panic!("similarity session returned exact results");
        };
        let mut got: Vec<(u32, usize)> = results
            .matches
            .iter()
            .map(|m| (m.graph_id, m.distance))
            .collect();
        got.sort_unstable();
        let mut want = oracle_similarity(&spec.graph(), system.db(), sigma);
        want.sort_unstable();
        assert_eq!(
            got, want,
            "similarity answer mismatch ({kind:?}, seed {seed})"
        );
        // results are rank-ordered by distance
        for w in results.matches.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
    assert!(tested >= 2, "not enough derivable similarity queries");
}

#[test]
fn best_case_candidates_are_verification_free() {
    let system = build_system();
    let frequent: Vec<Graph> = (0..system.indexes().a2f.fragment_count() as u32)
        .map(|id| system.indexes().a2f.fragment(id).unwrap())
        .collect();
    let Some(spec) = derive_similarity_query(
        system.db(),
        &frequent,
        &DeriveConfig {
            size: 4,
            kind: QueryKind::BestCase,
            seed: 9,
        },
        "Q1-like",
    ) else {
        return; // no frequent fragment of the needed size in this dataset
    };
    let mut session = system.session(2);
    replay(&mut session, &spec);
    session.choose_similarity().unwrap();
    let sc = session.similarity_candidates().expect("computed");
    // best case: R_ver empty at every level (fragments are frequent or dead)
    for (level, lc) in &sc.levels {
        assert!(
            lc.ver.is_empty(),
            "best-case query has verification candidates at level {level}"
        );
    }
}

#[test]
fn exact_fallback_to_similarity_on_run() {
    // Run a query with no exact match *without* opting into similarity:
    // Algorithm 1 lines 19-21 fall back automatically.
    let system = build_system();
    let spec = derive_similarity_query(
        system.db(),
        &[],
        &DeriveConfig {
            size: 4,
            kind: QueryKind::WorstCase,
            seed: 17,
        },
        "F",
    )
    .expect("derivable");
    let mut session = system.session(2);
    replay(&mut session, &spec);
    assert!(!session.is_similarity());
    let outcome = session.run().expect("runnable");
    match outcome.results {
        QueryResults::Similar(results) => {
            let want = oracle_similarity(&spec.graph(), system.db(), 2);
            assert_eq!(results.matches.len(), want.len());
        }
        QueryResults::Exact(ids) => {
            panic!(
                "query with no exact match returned {} exact results",
                ids.len()
            )
        }
    }
}

#[test]
fn frequent_fragment_query_is_verification_free_and_exact() {
    let system = build_system();
    // pick an indexed frequent fragment of size >= 2 and formulate it
    let a2f = &system.indexes().a2f;
    let id = (0..a2f.fragment_count() as u32)
        .find(|&id| a2f.size(id) >= 2)
        .expect("some multi-edge frequent fragment");
    let frag = a2f.fragment(id).unwrap();
    // build a connected edge order over the fragment
    let mut order: Vec<u32> = Vec::new();
    let mut wired: std::collections::HashSet<u32> = std::collections::HashSet::new();
    while order.len() < frag.edge_count() {
        for e in 0..frag.edge_count() as u32 {
            if order.contains(&e) {
                continue;
            }
            let edge = frag.edge(e);
            if order.is_empty() || wired.contains(&edge.u) || wired.contains(&edge.v) {
                order.push(e);
                wired.insert(edge.u);
                wired.insert(edge.v);
            }
        }
    }
    let mut session = system.session(2);
    let nodes: Vec<_> = frag.labels().iter().map(|&l| session.add_node(l)).collect();
    for &e in &order {
        let edge = frag.edge(e);
        session
            .add_edge(nodes[edge.u as usize], nodes[edge.v as usize])
            .unwrap();
    }
    // R_q must equal fsgIds exactly — this is the verification-free case
    let expect = a2f.fsg_ids(id).unwrap().to_vec();
    assert_eq!(session.exact_candidates(), expect);
    let outcome = session.run().unwrap();
    match outcome.results {
        QueryResults::Exact(ids) => {
            assert_eq!(ids, expect);
            // cross-check against brute force
            assert_eq!(ids, oracle_containment(&frag, system.db()));
        }
        _ => panic!("expected exact results"),
    }
}

#[test]
fn step_statuses_follow_fragment_nature() {
    let system = build_system();
    let spec = derive_similarity_query(
        system.db(),
        &[],
        &DeriveConfig {
            size: 5,
            kind: QueryKind::WorstCase,
            seed: 23,
        },
        "W",
    )
    .expect("derivable");
    let mut session = system.session(2);
    let steps = replay(&mut session, &spec);
    // once Similar (empty R_q), later steps stay Similar — R_q only shrinks
    if let Some(pos) = steps.iter().position(|s| s.status == StepStatus::Similar) {
        for s in &steps[pos..] {
            assert_eq!(s.status, StepStatus::Similar);
            assert_eq!(s.candidate_count, 0);
        }
    }
}

#[test]
fn empty_query_cannot_run() {
    let system = build_system();
    let mut session = system.session(2);
    assert!(session.run().is_err());
}

#[test]
fn build_stats_are_populated() {
    let system = build_system();
    let stats = system.stats();
    assert!(stats.frequent_fragments > 0);
    assert!(system.index_footprint().total() > 0);
}

#[test]
fn incremental_insert_keeps_answers_exact() {
    // Build over part of the data, insert the rest incrementally, and
    // check both exact and similarity answers against brute force.
    let ds = prague_datagen::molecules_generate(&prague_datagen::MoleculeConfig {
        graphs: 160,
        mean_nodes: 12.0,
        ..Default::default()
    });
    let all: Vec<prague_graph::Graph> = ds.db.graphs().to_vec();
    let (initial, inserts) = all.split_at(120);
    let mut system = PragueSystem::build_with_labels(
        prague_graph::GraphDb::from_graphs(initial.to_vec()),
        ds.labels,
        SystemParams {
            alpha: 0.15,
            beta: 3,
            max_fragment_edges: 6,
            ..Default::default()
        },
    )
    .expect("builds");

    for g in inserts {
        system.insert_graph(g.clone()).unwrap();
    }
    assert_eq!(system.db().len(), 160);
    assert!(system.inserted_fraction() > 0.2);

    // exact containment query
    for seed in [4u64, 8, 15] {
        let Some(spec) = derive_containment_query(system.db(), 4, seed, "I") else {
            continue;
        };
        let mut session = system.session(2);
        replay(&mut session, &spec);
        let truth = oracle_containment(&spec.graph(), system.db());
        // completeness of the candidate set (includes inserted graphs)
        for id in &truth {
            assert!(
                session.exact_candidates().contains(id),
                "candidates miss graph {id} after insert (seed {seed})"
            );
        }
        match session.run().unwrap().results {
            QueryResults::Exact(ids) => assert_eq!(ids, truth, "seed {seed}"),
            QueryResults::Similar(_) => assert!(truth.is_empty()),
        }
    }

    // similarity query
    let spec = derive_similarity_query(
        system.db(),
        &[],
        &DeriveConfig {
            size: 5,
            kind: QueryKind::WorstCase,
            seed: 77,
        },
        "I",
    )
    .expect("derivable");
    let mut session = system.session(2);
    replay(&mut session, &spec);
    session.choose_similarity().unwrap();
    let QueryResults::Similar(results) = session.run().unwrap().results else {
        panic!("similarity query");
    };
    let mut got: Vec<(u32, usize)> = results
        .matches
        .iter()
        .map(|m| (m.graph_id, m.distance))
        .collect();
    got.sort_unstable();
    let mut want = oracle_similarity(&spec.graph(), system.db(), 2);
    want.sort_unstable();
    assert_eq!(got, want, "similarity answers diverge after inserts");
}

#[test]
fn insert_graph_with_entirely_new_labels() {
    // A graph whose edges were never seen must not be lost: it is indexed
    // as fresh size-1 DIF entries, so queries over its labels find it.
    let ds = prague_datagen::molecules_generate(&prague_datagen::MoleculeConfig {
        graphs: 80,
        mean_nodes: 10.0,
        ..Default::default()
    });
    let mut system = PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.2,
            beta: 3,
            max_fragment_edges: 5,
            ..Default::default()
        },
    )
    .expect("builds");
    // exotic molecule: X-Y-X chain with labels outside the atom table
    let mut exotic = prague_graph::Graph::new();
    let x1 = exotic.add_node(prague_graph::Label(40));
    let y = exotic.add_node(prague_graph::Label(41));
    let x2 = exotic.add_node(prague_graph::Label(40));
    exotic.add_edge(x1, y).unwrap();
    exotic.add_edge(y, x2).unwrap();
    let gid = system.insert_graph(exotic).unwrap();

    let mut session = system.session(1);
    let a = session.add_node(prague_graph::Label(40));
    let b = session.add_node(prague_graph::Label(41));
    let step = session.add_edge(a, b).unwrap();
    assert_eq!(
        step.candidate_count, 1,
        "new-label edge should have one candidate"
    );
    match session.run().unwrap().results {
        QueryResults::Exact(ids) => assert_eq!(ids, vec![gid]),
        _ => panic!("expected the inserted graph as an exact match"),
    }
}
