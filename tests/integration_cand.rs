//! Differential tests for the compressed candidate-set engine: the
//! `IdSet`/`CandMemo` pipeline must produce byte-identical candidate sets
//! to the original sorted-`Vec` algorithm at every step of randomized
//! interactive sessions — additions, deletions, and re-additions alike —
//! and the session memo must behave as pure cache replay across edits.

use prague::{CandMemo, PragueSystem, SimilarCandidates, SystemParams};
use prague_datagen::QuerySpec;
use prague_graph::{Graph, GraphDb, GraphId, Label, NodeId};
use prague_index::{A2fIndex, A2iIndex};
use prague_obs::{names, Obs};
use prague_spig::{SpigSet, SpigVertex};
use proptest::prelude::*;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Reference implementation: the pre-IdSet sorted-Vec algorithms, verbatim.
// ---------------------------------------------------------------------------

fn intersect_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn union_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn difference_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(a.len());
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// `ExactSubCandidates` exactly as shipped before the engine change,
/// including the eagerly materialized `(0..db_len)` fallback.
fn ref_exact(v: &SpigVertex, a2f: &A2fIndex, a2i: &A2iIndex, db_len: usize) -> Vec<GraphId> {
    let fl = &v.fragment_list;
    if fl.dead {
        return Vec::new();
    }
    if let Some(fid) = fl.freq_id {
        return a2f.fsg_ids(fid).expect("store readable").to_vec();
    }
    if let Some(did) = fl.dif_id {
        return a2i.fsg_ids(did).to_vec();
    }
    let mut lists: Vec<Vec<GraphId>> = Vec::new();
    for &fid in &fl.phi {
        lists.push(a2f.fsg_ids(fid).expect("store readable").to_vec());
    }
    for &did in &fl.upsilon {
        lists.push(a2i.fsg_ids(did).to_vec());
    }
    if lists.is_empty() {
        return (0..db_len as GraphId).collect();
    }
    lists.sort_by_key(Vec::len);
    let mut acc = lists[0].clone();
    for l in &lists[1..] {
        if acc.is_empty() {
            break;
        }
        acc = intersect_sorted(&acc, l);
    }
    acc
}

/// `SimilarSubCandidates` as shipped before the engine change: per-level
/// `(free, ver)` sorted id lists with `ver := ver \ free`.
fn ref_similar(
    q_size: usize,
    sigma: usize,
    set: &SpigSet,
    a2f: &A2fIndex,
    a2i: &A2iIndex,
    db_len: usize,
) -> BTreeMap<usize, (Vec<GraphId>, Vec<GraphId>)> {
    let mut out = BTreeMap::new();
    if q_size == 0 {
        return out;
    }
    let lowest = q_size.saturating_sub(sigma).max(1);
    for i in (lowest..=q_size).rev() {
        let mut free: Vec<GraphId> = Vec::new();
        let mut ver: Vec<GraphId> = Vec::new();
        for (v, _mask) in prague::candidates::distinct_level_fragments(set, i) {
            let cands = ref_exact(v, a2f, a2i, db_len);
            if v.fragment_list.is_indexed() {
                free = union_sorted(&free, &cands);
            } else {
                ver = union_sorted(&ver, &cands);
            }
        }
        ver = difference_sorted(&ver, &free);
        out.insert(i, (free, ver));
    }
    out
}

// ---------------------------------------------------------------------------
// Random-session scaffolding (same shape as integration_properties.rs).
// ---------------------------------------------------------------------------

fn connected_graph(max_n: usize, label_count: u16) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..label_count, n);
        let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..=2);
        (labels, parents, extras).prop_map(move |(labels, parents, extras)| {
            let mut g = Graph::new();
            for &l in &labels {
                g.add_node(Label(l));
            }
            for (i, &p) in parents.iter().enumerate() {
                g.add_edge((i + 1) as NodeId, (p as usize % (i + 1)) as NodeId)
                    .unwrap();
            }
            for &(a, b) in &extras {
                if a != b {
                    let _ = g.add_edge(a as NodeId, b as NodeId);
                }
            }
            g
        })
    })
}

fn small_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(connected_graph(6, 3), 4..9).prop_map(GraphDb::from_graphs)
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    connected_graph(5, 3).prop_map(|g| {
        let mut order: Vec<u32> = Vec::new();
        let mut wired = std::collections::HashSet::new();
        while order.len() < g.edge_count() {
            for e in 0..g.edge_count() as u32 {
                if order.contains(&e) {
                    continue;
                }
                let edge = g.edge(e);
                if order.is_empty() || wired.contains(&edge.u) || wired.contains(&edge.v) {
                    order.push(e);
                    wired.insert(edge.u);
                    wired.insert(edge.v);
                }
            }
        }
        let mut node_map = vec![u32::MAX; g.node_count()];
        let mut node_labels = Vec::new();
        let mut edges = Vec::new();
        for &e in &order {
            let edge = g.edge(e);
            for &n in &[edge.u, edge.v] {
                if node_map[n as usize] == u32::MAX {
                    node_map[n as usize] = node_labels.len() as u32;
                    node_labels.push(g.label(n));
                }
            }
            edges.push((node_map[edge.u as usize], node_map[edge.v as usize]));
        }
        QuerySpec {
            name: "C".into(),
            node_labels,
            edges,
            similar_at: None,
        }
    })
}

fn build(db: GraphDb, alpha: f64) -> PragueSystem {
    PragueSystem::build(
        db,
        SystemParams {
            alpha,
            beta: 2,
            max_fragment_edges: 6,
            ..Default::default()
        },
    )
    .expect("builds")
}

/// Compare the live engine against the reference at the session's current
/// canvas state: exact candidates (memo-on session state AND a memo-off
/// direct call AND a cross-step test memo) and per-level similarity sets,
/// ids in order.
fn check_state(
    session: &prague::session::Session<'_>,
    system: &PragueSystem,
    memo: &CandMemo,
    sigma: usize,
) -> Result<(), TestCaseError> {
    let a2f = &system.indexes().a2f;
    let a2i = &system.indexes().a2i;
    let db_len = system.db().len();

    // Exact: session state (computed through its own memo) vs reference.
    if let Some(v) = session.spigs().target_vertex(session.query()) {
        let want = ref_exact(v, a2f, a2i, db_len);
        prop_assert_eq!(
            session.exact_candidates(),
            want.clone(),
            "session R_q diverges from sorted-vec reference"
        );
        // Memo-off direct call and cross-step memoized call agree too.
        let bare = prague::exact_sub_candidate_set(v, a2f, a2i, db_len, None).unwrap();
        prop_assert_eq!(bare.to_vec(), want.clone());
        let memod = prague::exact_sub_candidate_set(v, a2f, a2i, db_len, Some(memo)).unwrap();
        prop_assert_eq!(memod.to_vec(), want);
    }

    // Similarity: every level, free and ver, ids in order.
    let q_size = session.query().size();
    let want = ref_similar(q_size, sigma, session.spigs(), a2f, a2i, db_len);
    for with_memo in [None, Some(memo)] {
        let got: SimilarCandidates = prague::similar_sub_candidates(
            q_size,
            sigma,
            session.spigs(),
            a2f,
            a2i,
            db_len,
            with_memo,
        )
        .unwrap();
        prop_assert_eq!(got.levels.len(), want.len(), "level sets differ");
        for (level, (free, ver)) in &want {
            let lc = &got.levels[level];
            prop_assert_eq!(lc.free.to_vec(), free.clone(), "free @ level {}", level);
            prop_assert_eq!(lc.ver.to_vec(), ver.clone(), "ver @ level {}", level);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The acceptance-gate differential: random db, random query, grown
    /// edge-at-a-time, then edges deleted and re-added — the engine must
    /// match the sorted-vec reference byte-for-byte after every action.
    #[test]
    fn engine_matches_sorted_vec_reference(
        db in small_db(),
        spec in query_spec(),
        alpha in 0.25f64..0.55,
        sigma in 1usize..3,
    ) {
        let system = build(db, alpha);
        let test_memo = CandMemo::new(Obs::disabled());
        let mut session = system.session(sigma);
        let nodes: Vec<_> = spec.node_labels.iter().map(|&l| session.add_node(l)).collect();
        for &(u, v) in &spec.edges {
            session.add_edge(nodes[u as usize], nodes[v as usize]).unwrap();
            check_state(&session, &system, &test_memo, sigma)?;
        }
        // Delete up to two deletable edges, checking after each; re-add the
        // last deleted edge and check the memo-replayed state too.
        let mut readd: Option<(u32, u32)> = None;
        for _ in 0..2 {
            let edges = session.query().live_edges();
            let Some(&(label, u, v)) = edges
                .iter()
                .find(|&&(l, _, _)| session.query().edge_is_deletable(l))
            else {
                break;
            };
            session.delete_edge(label).unwrap();
            check_state(&session, &system, &test_memo, sigma)?;
            readd = Some((u, v));
        }
        if let Some((u, v)) = readd {
            session.add_edge(u, v).unwrap();
            check_state(&session, &system, &test_memo, sigma)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Memo-invalidation / replay regression tests (deterministic).
// ---------------------------------------------------------------------------

fn molecule_system() -> PragueSystem {
    let ds = prague_datagen::molecules_generate(&prague_datagen::MoleculeConfig {
        graphs: 150,
        mean_nodes: 10.0,
        ..Default::default()
    });
    PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.15,
            beta: 3,
            max_fragment_edges: 7,
            ..Default::default()
        },
    )
    .expect("system builds")
}

/// `delete_edge` then `add_edge` of the same edge must land the session in
/// exactly the state a fresh session reaches over the same final query —
/// and the re-add must be served from the memo (hits observed, no growth).
#[test]
fn delete_then_readd_is_pure_cache_replay() {
    let mut system = molecule_system();
    system.set_obs(Obs::enabled());
    let Some(spec) = prague_datagen::derive_containment_query(system.db(), 5, 17, "D") else {
        panic!("derivable query expected from generated molecules");
    };
    let mut session = system.session(2);
    let nodes: Vec<_> = spec
        .node_labels
        .iter()
        .map(|&l| session.add_node(l))
        .collect();
    for &(u, v) in &spec.edges {
        session
            .add_edge(nodes[u as usize], nodes[v as usize])
            .unwrap();
    }
    let formulated = session.exact_candidates();

    // Find a deletable edge, delete it, then re-draw it.
    let edges = session.query().live_edges();
    let Some(&(label, u, v)) = edges
        .iter()
        .find(|&&(l, _, _)| session.query().edge_is_deletable(l))
    else {
        panic!("query of size 5 has a deletable edge");
    };
    let entries_before = session.memo().len();
    let hits_before = system
        .obs()
        .snapshot()
        .and_then(|s| s.counter(names::CAND_MEMO_HITS))
        .unwrap_or(0);
    session.delete_edge(label).unwrap();
    session.add_edge(u, v).unwrap();

    // Byte-identical to both the pre-edit state and a fresh formulation.
    assert_eq!(session.exact_candidates(), formulated);
    let mut fresh = system.session(2);
    let nodes: Vec<_> = spec
        .node_labels
        .iter()
        .map(|&l| fresh.add_node(l))
        .collect();
    for &(u, v) in &spec.edges {
        fresh
            .add_edge(nodes[u as usize], nodes[v as usize])
            .unwrap();
    }
    assert_eq!(session.exact_candidates(), fresh.exact_candidates());

    // Replay, not recomputation: every fragment CAM the edit touched was
    // already cached, so the memo gained nothing and served hits.
    assert_eq!(
        session.memo().len(),
        entries_before,
        "edit of a previously-formulated fragment must not grow the memo"
    );
    let hits_after = system
        .obs()
        .snapshot()
        .and_then(|s| s.counter(names::CAND_MEMO_HITS))
        .unwrap_or(0);
    assert!(
        hits_after > hits_before,
        "re-added fragment must be served from the memo (hits {hits_before} -> {hits_after})"
    );
}

/// Disabling the memo changes nothing about the answers.
#[test]
fn memo_disabled_sessions_agree() {
    let system = molecule_system();
    let Some(spec) = prague_datagen::derive_containment_query(system.db(), 6, 23, "M") else {
        panic!("derivable query expected from generated molecules");
    };
    let mut on = system.session(2);
    let mut off = system.session(2);
    off.set_memo_enabled(false);
    let nodes_on: Vec<_> = spec.node_labels.iter().map(|&l| on.add_node(l)).collect();
    let nodes_off: Vec<_> = spec.node_labels.iter().map(|&l| off.add_node(l)).collect();
    for &(u, v) in &spec.edges {
        on.add_edge(nodes_on[u as usize], nodes_on[v as usize])
            .unwrap();
        off.add_edge(nodes_off[u as usize], nodes_off[v as usize])
            .unwrap();
        assert_eq!(on.exact_candidates(), off.exact_candidates());
    }
    assert!(
        off.memo().is_empty(),
        "disabled memo must not admit entries"
    );
    assert!(
        !on.memo().is_empty(),
        "enabled memo must have admitted entries"
    );
}

/// Inserting a graph bumps the system's index epoch; a session created
/// before the insert would hold stale cached sets, so the epoch guard must
/// clear its memo before serving anything.
#[test]
fn index_epoch_bumps_on_insert() {
    let mut system = molecule_system();
    assert_eq!(system.index_epoch(), 0);
    let g = system.db().graph(0).clone();
    system.insert_graph(g).unwrap();
    assert_eq!(system.index_epoch(), 1);
}
