//! Differential suite for the parallel cancellable verification engine:
//! everything observable from a session — per-step candidate sets, run
//! results after every step, modification behavior, similarity rankings,
//! and the obs counters — must be byte-identical at every thread count,
//! with the sequential `--threads 1` path as the reference. Similarity
//! output is additionally checked against the brute-force mccs oracle.

#[path = "common/mod.rs"]
mod common;

use common::oracle_similarity;
use prague::{
    exact_verification_obs, exact_verification_par, PragueSystem, QueryResults, SystemParams,
    VerifyCost,
};
use prague_datagen::{MoleculeConfig, QuerySpec};
use prague_graph::{Graph, GraphDb, GraphId, Label, NodeId};
use prague_idset::IdSet;
use prague_obs::{names, Obs};
use prague_par::{tuning, Pool};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn connected_graph(max_n: usize, label_count: u16) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..label_count, n);
        let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..=2);
        (labels, parents, extras).prop_map(move |(labels, parents, extras)| {
            let mut g = Graph::new();
            for &l in &labels {
                g.add_node(Label(l));
            }
            for (i, &p) in parents.iter().enumerate() {
                g.add_edge((i + 1) as NodeId, (p as usize % (i + 1)) as NodeId)
                    .unwrap();
            }
            for &(a, b) in &extras {
                if a != b {
                    let _ = g.add_edge(a as NodeId, b as NodeId);
                }
            }
            g
        })
    })
}

fn small_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(connected_graph(6, 3), 4..10).prop_map(GraphDb::from_graphs)
}

/// A query spec from a random connected graph, edges in connected growth
/// order (same shape as `integration_properties.rs`).
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    connected_graph(5, 3).prop_map(|g| {
        let mut order: Vec<u32> = Vec::new();
        let mut wired = std::collections::HashSet::new();
        while order.len() < g.edge_count() {
            for e in 0..g.edge_count() as u32 {
                if order.contains(&e) {
                    continue;
                }
                let edge = g.edge(e);
                if order.is_empty() || wired.contains(&edge.u) || wired.contains(&edge.v) {
                    order.push(e);
                    wired.insert(edge.u);
                    wired.insert(edge.v);
                }
            }
        }
        let mut node_map = vec![u32::MAX; g.node_count()];
        let mut node_labels = Vec::new();
        let mut edges = Vec::new();
        for &e in &order {
            let edge = g.edge(e);
            for &n in &[edge.u, edge.v] {
                if node_map[n as usize] == u32::MAX {
                    node_map[n as usize] = node_labels.len() as u32;
                    node_labels.push(g.label(n));
                }
            }
            edges.push((node_map[edge.u as usize], node_map[edge.v as usize]));
        }
        QuerySpec {
            name: "P".into(),
            node_labels,
            edges,
            similar_at: None,
        }
    })
}

fn build(db: GraphDb, alpha: f64) -> PragueSystem {
    PragueSystem::build(
        db,
        SystemParams {
            alpha,
            beta: 2,
            max_fragment_edges: 6,
            ..Default::default()
        },
    )
    .expect("builds")
}

fn result_ids(r: &QueryResults) -> Vec<GraphId> {
    match r {
        QueryResults::Exact(ids) => ids.clone(),
        QueryResults::Similar(s) => s.ids(),
    }
}

/// Everything a full edit script makes observable, for cross-thread-count
/// comparison. `Run` is clicked after every step, so each step's pending
/// background batch is either joined (matching generation) or superseded
/// by the next edit — both paths must reproduce the sequential answer.
#[derive(Debug, Default, PartialEq)]
struct Trace {
    step_candidates: Vec<(usize, Vec<GraphId>)>,
    step_results: Vec<Vec<GraphId>>,
    after_delete: Option<(Vec<GraphId>, Vec<GraphId>)>,
    similar: Vec<(GraphId, usize)>,
}

/// Replay `spec` as an edit script: add each edge (Run after every add),
/// delete the last removable edge and Run, then switch to similarity and
/// Run once more.
fn run_script(system: &PragueSystem, spec: &QuerySpec, sigma: usize) -> Trace {
    let mut trace = Trace::default();
    let mut session = system.session(sigma);
    let nodes: Vec<_> = spec
        .node_labels
        .iter()
        .map(|&l| session.add_node(l))
        .collect();
    let mut edge_ids = Vec::new();
    for &(u, v) in &spec.edges {
        let step = session
            .add_edge(nodes[u as usize], nodes[v as usize])
            .expect("spec edges are valid");
        edge_ids.push(step.edge);
        trace
            .step_candidates
            .push((step.candidate_count, session.exact_candidates().to_vec()));
        let outcome = session.run().expect("runnable mid-formulation");
        trace.step_results.push(result_ids(&outcome.results));
    }
    // Modify: delete the most recent deletable edge, if any
    if let Some(&edge) = edge_ids
        .iter()
        .rev()
        .filter(|_| spec.edges.len() >= 2)
        .find(|&&e| session.query().edge_is_deletable(e))
    {
        session.delete_edge(edge).expect("checked deletable");
        let candidates = session.exact_candidates().to_vec();
        let outcome = session.run().expect("runnable after delete");
        trace.after_delete = Some((candidates, result_ids(&outcome.results)));
        // restore so the similarity phase sees the full query
        let idx = edge_ids.iter().position(|&e| e == edge).unwrap();
        let (u, v) = spec.edges[idx];
        session
            .add_edge(nodes[u as usize], nodes[v as usize])
            .expect("re-adding a deleted edge");
        session.run().expect("runnable after re-add");
    }
    session.choose_similarity().expect("similarity switch");
    let outcome = session.run().expect("runnable in similarity");
    if let QueryResults::Similar(results) = outcome.results {
        trace.similar = results
            .matches
            .iter()
            .map(|m| (m.graph_id, m.distance))
            .collect();
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole differential property: a full edit script traced at
    /// 1, 2 and 4 threads produces identical candidate sets, identical
    /// Run results at every step, and identical similarity rankings —
    /// and the similarity ranking agrees with the brute-force
    /// `|mccs| ≥ i` oracle.
    #[test]
    fn parallel_session_is_byte_identical_to_sequential(
        db in small_db(),
        spec in query_spec(),
        sigma in 1usize..3,
    ) {
        let mut system = build(db, 0.35);
        let mut reference: Option<Trace> = None;
        let mut query_graph: Option<Graph> = None;
        for threads in [1usize, 2, 4] {
            system.set_threads(threads);
            let trace = run_script(&system, &spec, sigma);
            match &reference {
                None => {
                    // capture the final query for the oracle check
                    let mut session = system.session(sigma);
                    let nodes: Vec<_> = spec
                        .node_labels
                        .iter()
                        .map(|&l| session.add_node(l))
                        .collect();
                    for &(u, v) in &spec.edges {
                        session.add_edge(nodes[u as usize], nodes[v as usize]).unwrap();
                    }
                    query_graph = Some(session.query().graph().clone());
                    reference = Some(trace);
                }
                Some(base) => prop_assert_eq!(
                    base, &trace,
                    "trace diverged at {} threads", threads
                ),
            }
        }
        // SimVerify output vs the mccs oracle on the sequential reference
        let q = query_graph.expect("captured");
        let mut got = reference.expect("captured").similar;
        got.sort_unstable();
        let mut want = oracle_similarity(&q, system.db(), sigma);
        want.sort_unstable();
        prop_assert_eq!(got, want, "similarity output disagrees with the mccs oracle");
    }
}

/// Molecule fixture mined shallow (≤ 3-edge fragments) so a 4-edge query
/// is never indexed: its candidates always need verification, forcing
/// real pool work.
fn shallow_molecule_system() -> PragueSystem {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 150,
        seed: 0x0B51,
        ..Default::default()
    });
    PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.1,
            beta: 2,
            max_fragment_edges: 3,
            ..Default::default()
        },
    )
    .expect("system builds")
}

/// One C-C-C-S-C chain session with Run at the end; returns the results
/// and the obs counters of interest.
fn chain_run(system: &PragueSystem) -> (Vec<GraphId>, u64, u64) {
    let c = system.labels().get("C").expect("carbon label");
    let s = system.labels().get("S").expect("sulfur label");
    let mut session = system.session(2);
    let labels = [c, c, c, s, c];
    let nodes: Vec<_> = labels.iter().map(|&l| session.add_node(l)).collect();
    for w in nodes.windows(2) {
        session.add_edge(w[0], w[1]).expect("connected step");
    }
    let outcome = session.run().expect("runnable");
    let ids = result_ids(&outcome.results);
    let snap = system.obs().snapshot().expect("obs enabled");
    (
        ids,
        snap.counter(names::VERIFY_VF2_STATES).unwrap_or(0),
        snap.counter(names::PAR_JOBS).unwrap_or(0),
    )
}

/// Background verification work that was cancelled mid-flight must leave
/// no trace in the verification counters: `verify.vf2_states` is identical
/// at every thread count, even though the pool demonstrably ran jobs.
#[test]
fn cancelled_and_parallel_work_never_pollutes_counters() {
    let mut system = shallow_molecule_system();
    let mut reference: Option<(Vec<GraphId>, u64)> = None;
    for threads in [1usize, 4, 4] {
        system.set_threads(threads);
        system.set_obs(Obs::enabled()); // fresh handle per round
        let (ids, states, jobs) = chain_run(&system);
        assert!(states > 0, "a 4-edge unindexed query must verify");
        if threads > 1 {
            assert!(jobs > 0, "pool saw no jobs despite threads = {threads}");
        }
        match &reference {
            None => reference = Some((ids, states)),
            Some((ref_ids, ref_states)) => {
                assert_eq!(ref_ids, &ids, "results differ at {threads} threads");
                assert_eq!(
                    *ref_states, states,
                    "vf2 state accounting differs at {threads} threads"
                );
            }
        }
    }
}

/// Rapid edit/cancel churn at 1, 2 and 8 threads, including dropping a
/// session with verification still in flight: no deadlock, no lost
/// results, the pool drains, and every thread count agrees on the final
/// answer.
#[test]
fn session_stress_rapid_edits_and_mid_flight_drop() {
    let mut system = shallow_molecule_system();
    let c = system.labels().get("C").expect("carbon label");
    let s = system.labels().get("S").expect("sulfur label");
    let mut reference: Option<Vec<GraphId>> = None;
    for threads in [1usize, 2, 8] {
        system.set_threads(threads);
        for round in 0..3 {
            let mut session = system.session(2);
            let labels = [c, c, c, s, c];
            let nodes: Vec<_> = labels.iter().map(|&l| session.add_node(l)).collect();
            // rapid-fire edits with no Run in between: every add supersedes
            // the previous speculative batch
            let mut last_edge = None;
            for w in nodes.windows(2) {
                last_edge = Some(session.add_edge(w[0], w[1]).expect("connected step").edge);
            }
            let e = last_edge.expect("edges added");
            session.delete_edge(e).expect("leaf edge removable");
            session
                .add_edge(nodes[3], nodes[4])
                .expect("re-adding the leaf edge");
            if round == 1 {
                // abandon with work pending: Drop must cancel, the pool
                // must drain, and the next round must be unaffected
                drop(session);
                if let Some(pool) = system.pool() {
                    assert!(
                        pool.wait_idle(Duration::from_secs(10)),
                        "pool stuck after mid-flight session drop"
                    );
                }
                continue;
            }
            let outcome = session.run().expect("runnable");
            let ids = result_ids(&outcome.results);
            match &reference {
                None => reference = Some(ids),
                Some(r) => assert_eq!(r, &ids, "results differ at {threads} threads"),
            }
        }
        if let Some(pool) = system.pool() {
            assert!(
                pool.wait_idle(Duration::from_secs(10)),
                "pool did not drain at {threads} threads"
            );
        }
    }
}

/// The sequential-fallback boundary is cost-driven: with the model seeded
/// so the estimated batch cost sits just below the payoff threshold
/// (`fallback.overhead_mult` × the measured per-job overhead), the batch
/// must run inline — `par.seq_fallbacks` fires and the only pool jobs are
/// the calibration no-ops. Seeded just above, the batch must fan out —
/// `par.jobs` grows past the calibration batch and no fallback fires.
/// Either way the verified ids and `verify.vf2_states` are identical to
/// the plain sequential path.
#[test]
fn sequential_fallback_boundary_is_cost_driven() {
    // 12 three-node paths; the even ones contain the C-S query edge.
    let mut db = GraphDb::new();
    let mut ids: Vec<GraphId> = Vec::new();
    for i in 0..12u16 {
        let mut g = Graph::new();
        let a = g.add_node(Label(0));
        let b = g.add_node(Label(if i % 2 == 0 { 1 } else { 0 }));
        let c = g.add_node(Label(0));
        g.add_edge(a, b).expect("fresh edge");
        g.add_edge(b, c).expect("fresh edge");
        ids.push(db.push(g));
    }
    let db = Arc::new(db);
    let mut q = Graph::new();
    let qa = q.add_node(Label(0));
    let qb = q.add_node(Label(1));
    q.add_edge(qa, qb).expect("fresh edge");
    let cands = IdSet::from_sorted_slice(&ids);

    // Sequential reference: ids and vf2 state count.
    let ref_obs = Obs::enabled();
    let ref_ids = exact_verification_obs(&q, &cands, &db, false, &ref_obs);
    let ref_states = ref_obs
        .snapshot()
        .expect("obs enabled")
        .counter(names::VERIFY_VF2_STATES)
        .unwrap_or(0);
    assert!(ref_states > 0, "reference run must expand VF2 states");

    let calibration = tuning::CALIBRATION_JOBS as u64;
    for expect_pool in [false, true] {
        let obs = Obs::enabled();
        let pool = Pool::new(2, obs.clone());
        let overhead = pool.job_overhead_ns();
        let threshold = tuning::FALLBACK_OVERHEAD_MULT.saturating_mul(overhead);
        // Seed states-per-candidate at 1 and pick ns-per-state so the
        // estimate lands at 0.9× (below) or 1.1× (above) the threshold.
        let factor = if expect_pool { 1.1 } else { 0.9 };
        let nps = factor * threshold as f64 / cands.len() as f64;
        let mut cost = VerifyCost::seeded(1.0, nps);
        if expect_pool {
            assert!(cost.should_parallelize(cands.len(), overhead));
        } else {
            assert!(!cost.should_parallelize(cands.len(), overhead));
        }

        let verified = exact_verification_par(&q, &cands, &db, false, &obs, &pool, &mut cost, None);
        assert_eq!(verified, ref_ids, "expect_pool={expect_pool}");

        let snap = obs.snapshot().expect("obs enabled");
        assert_eq!(
            snap.counter(names::VERIFY_VF2_STATES).unwrap_or(0),
            ref_states,
            "vf2 accounting drifted (expect_pool={expect_pool})"
        );
        let jobs = snap.counter(names::PAR_JOBS).unwrap_or(0);
        let fallbacks = snap.counter(names::PAR_SEQ_FALLBACKS).unwrap_or(0);
        if expect_pool {
            assert_eq!(fallbacks, 0, "cheap-batch fallback fired above threshold");
            assert!(
                jobs > calibration,
                "batch above threshold never reached the pool (jobs = {jobs})"
            );
        } else {
            assert_eq!(fallbacks, 1, "batch below threshold was not run inline");
            assert_eq!(
                jobs, calibration,
                "batch below threshold still sent jobs to the pool"
            );
        }
    }
}
