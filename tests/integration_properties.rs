//! Cross-crate property tests on small random databases: exact answers,
//! similarity answers, and formulation-sequence invariance (the paper's
//! Lemma 2 consequence).

#[path = "common/mod.rs"]
mod common;

use common::{oracle_containment, oracle_similarity, replay_sequence};
use prague::{PragueSystem, QueryResults, SystemParams};
use prague_datagen::QuerySpec;
use prague_graph::{Graph, GraphDb, Label, NodeId};
use proptest::prelude::*;

fn connected_graph(max_n: usize, label_count: u16) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..label_count, n);
        let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..=2);
        (labels, parents, extras).prop_map(move |(labels, parents, extras)| {
            let mut g = Graph::new();
            for &l in &labels {
                g.add_node(Label(l));
            }
            for (i, &p) in parents.iter().enumerate() {
                g.add_edge((i + 1) as NodeId, (p as usize % (i + 1)) as NodeId)
                    .unwrap();
            }
            for &(a, b) in &extras {
                if a != b {
                    let _ = g.add_edge(a as NodeId, b as NodeId);
                }
            }
            g
        })
    })
}

fn small_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(connected_graph(6, 3), 4..10).prop_map(GraphDb::from_graphs)
}

/// A query spec built from a random connected graph: edges in a connected
/// growth order.
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    connected_graph(5, 3).prop_map(|g| {
        let mut order: Vec<u32> = Vec::new();
        let mut wired = std::collections::HashSet::new();
        while order.len() < g.edge_count() {
            for e in 0..g.edge_count() as u32 {
                if order.contains(&e) {
                    continue;
                }
                let edge = g.edge(e);
                if order.is_empty() || wired.contains(&edge.u) || wired.contains(&edge.v) {
                    order.push(e);
                    wired.insert(edge.u);
                    wired.insert(edge.v);
                }
            }
        }
        let mut node_map = vec![u32::MAX; g.node_count()];
        let mut node_labels = Vec::new();
        let mut edges = Vec::new();
        for &e in &order {
            let edge = g.edge(e);
            for &n in &[edge.u, edge.v] {
                if node_map[n as usize] == u32::MAX {
                    node_map[n as usize] = node_labels.len() as u32;
                    node_labels.push(g.label(n));
                }
            }
            edges.push((node_map[edge.u as usize], node_map[edge.v as usize]));
        }
        QuerySpec {
            name: "P".into(),
            node_labels,
            edges,
            similar_at: None,
        }
    })
}

fn build(db: GraphDb, alpha: f64) -> PragueSystem {
    PragueSystem::build(
        db,
        SystemParams {
            alpha,
            beta: 2,
            max_fragment_edges: 6,
            ..Default::default()
        },
    )
    .expect("builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn exact_results_match_oracle(db in small_db(), spec in query_spec(), alpha in 0.2f64..0.6) {
        let system = build(db, alpha);
        let mut session = system.session(2);
        let order: Vec<usize> = (0..spec.edges.len()).collect();
        replay_sequence(&mut session, &spec, &order);
        let truth = oracle_containment(session.query().graph(), system.db());
        // completeness at candidate level
        for id in &truth {
            prop_assert!(session.exact_candidates().contains(id));
        }
        let outcome = session.run().unwrap();
        match outcome.results {
            QueryResults::Exact(ids) => prop_assert_eq!(ids, truth),
            QueryResults::Similar(_) => prop_assert!(truth.is_empty()),
        }
    }

    #[test]
    fn similarity_results_match_oracle(db in small_db(), spec in query_spec(), sigma in 1usize..3) {
        let system = build(db, 0.4);
        let mut session = system.session(sigma);
        let order: Vec<usize> = (0..spec.edges.len()).collect();
        replay_sequence(&mut session, &spec, &order);
        session.choose_similarity().unwrap();
        let outcome = session.run().unwrap();
        let QueryResults::Similar(results) = outcome.results else {
            return Err(TestCaseError::fail("expected similar results"));
        };
        let mut got: Vec<(u32, usize)> = results.matches.iter().map(|m| (m.graph_id, m.distance)).collect();
        got.sort_unstable();
        let mut want = oracle_similarity(session.query().graph(), system.db(), sigma);
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sequence_invariance_of_candidates(db in small_db(), spec in query_spec()) {
        // Lemma 2 consequence: different formulation sequences yield the
        // same final candidate sets and the same run results.
        if spec.edges.len() < 2 { return Ok(()); }
        let system = build(db, 0.35);
        let sequences = {
            let mut v = vec![(0..spec.edges.len()).collect::<Vec<_>>()];
            v.extend(spec.alternative_sequences(2, 77));
            v
        };
        let mut exact_sets: Vec<Vec<u32>> = Vec::new();
        let mut sim_counts: Vec<usize> = Vec::new();
        for seq in &sequences {
            let mut session = system.session(2);
            replay_sequence(&mut session, &spec, seq);
            exact_sets.push(session.exact_candidates().to_vec());
            let n = session.choose_similarity().unwrap();
            sim_counts.push(n);
        }
        for w in exact_sets.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "exact candidates differ by sequence");
        }
        for w in sim_counts.windows(2) {
            prop_assert_eq!(w[0], w[1], "similarity candidate counts differ by sequence");
        }
    }
}
