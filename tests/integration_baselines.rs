//! Cross-system consistency: PRAGUE vs GBLENDER on exact queries, and
//! PRAGUE vs Grafil / SIGMA / DistVP on similarity queries — every system
//! must return the same (oracle) answers; the experiments then compare how
//! much work each needed.

#[path = "common/mod.rs"]
mod common;

use common::{oracle_containment, replay};
use prague::{PragueSystem, QueryResults, SystemParams};
use prague_baselines::{
    DistVp, FeatureIndex, FeatureIndexConfig, GBlenderSession, Grafil, Sigma, SimilaritySearch,
};
use prague_datagen::{
    derive_containment_query, derive_similarity_query, DeriveConfig, MoleculeConfig, QueryKind,
};
use prague_graph::GraphId;
use prague_mining::mine_classified;

struct Setup {
    system: PragueSystem,
    features: FeatureIndex,
}

fn setup() -> Setup {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 200,
        mean_nodes: 12.0,
        ..Default::default()
    });
    let result = mine_classified(&ds.db, 0.15, 7);
    let features = FeatureIndex::build(&result, &ds.db, &FeatureIndexConfig::default());
    let system = PragueSystem::from_mining_result(
        ds.db,
        ds.labels,
        result,
        SystemParams {
            alpha: 0.15,
            beta: 3,
            max_fragment_edges: 7,
            ..Default::default()
        },
    )
    .expect("system builds");
    Setup { system, features }
}

#[test]
fn gblender_agrees_with_prague_on_containment() {
    let s = setup();
    for seed in 0..5u64 {
        let Some(spec) = derive_containment_query(s.system.db(), 4, seed, "C") else {
            continue;
        };
        // PRAGUE
        let mut prague_session = s.system.session(2);
        replay(&mut prague_session, &spec);
        let prague_out = prague_session.run().unwrap();
        // GBLENDER over the same indexes
        let mut gb = GBlenderSession::new(
            s.system.db(),
            &s.system.indexes().a2f,
            &s.system.indexes().a2i,
        );
        let nodes: Vec<_> = spec.node_labels.iter().map(|&l| gb.add_node(l)).collect();
        for &(u, v) in &spec.edges {
            gb.add_edge(nodes[u as usize], nodes[v as usize]).unwrap();
        }
        let (gb_results, _) = gb.run();
        match prague_out.results {
            QueryResults::Exact(ids) => {
                assert_eq!(ids, gb_results, "seed {seed}");
                assert_eq!(ids, oracle_containment(&spec.graph(), s.system.db()));
            }
            _ => panic!("containment query"),
        }
    }
}

#[test]
fn gblender_returns_empty_for_similarity_queries() {
    // The paper's first GBLENDER limitation: no exact match -> empty result.
    let s = setup();
    let spec = derive_similarity_query(
        s.system.db(),
        &[],
        &DeriveConfig {
            size: 5,
            kind: QueryKind::WorstCase,
            seed: 3,
        },
        "W",
    )
    .expect("derivable");
    let mut gb = GBlenderSession::new(
        s.system.db(),
        &s.system.indexes().a2f,
        &s.system.indexes().a2i,
    );
    let nodes: Vec<_> = spec.node_labels.iter().map(|&l| gb.add_node(l)).collect();
    for &(u, v) in &spec.edges {
        gb.add_edge(nodes[u as usize], nodes[v as usize]).unwrap();
    }
    let (results, _) = gb.run();
    assert!(results.is_empty());
    // while PRAGUE returns approximate matches for the same query
    let mut session = s.system.session(2);
    replay(&mut session, &spec);
    let out = session.run().unwrap();
    match out.results {
        QueryResults::Similar(r) => assert!(
            !r.matches.is_empty(),
            "PRAGUE should find approximate matches where GBLENDER returns nothing"
        ),
        QueryResults::Exact(_) => panic!("query has no exact match"),
    }
}

#[test]
fn gblender_candidates_superset_of_answers() {
    let s = setup();
    let spec = derive_containment_query(s.system.db(), 5, 7, "C").expect("derivable");
    let mut gb = GBlenderSession::new(
        s.system.db(),
        &s.system.indexes().a2f,
        &s.system.indexes().a2i,
    );
    let nodes: Vec<_> = spec.node_labels.iter().map(|&l| gb.add_node(l)).collect();
    for &(u, v) in &spec.edges {
        gb.add_edge(nodes[u as usize], nodes[v as usize]).unwrap();
        let truth = oracle_containment(gb.query().graph(), s.system.db());
        for id in &truth {
            assert!(gb.candidates().contains(id), "GBLENDER lost answer {id}");
        }
    }
}

#[test]
fn gblender_modification_replays_correctly() {
    let s = setup();
    let spec = derive_containment_query(s.system.db(), 5, 19, "C").expect("derivable");
    let mut gb = GBlenderSession::new(
        s.system.db(),
        &s.system.indexes().a2f,
        &s.system.indexes().a2i,
    );
    let nodes: Vec<_> = spec.node_labels.iter().map(|&l| gb.add_node(l)).collect();
    for &(u, v) in &spec.edges {
        gb.add_edge(nodes[u as usize], nodes[v as usize]).unwrap();
    }
    let Some(&label) = gb
        .query()
        .live_labels()
        .iter()
        .find(|&&l| gb.query().edge_is_deletable(l))
    else {
        return;
    };
    gb.delete_edge(label).expect("deletable");
    let truth = oracle_containment(gb.query().graph(), s.system.db());
    let (results, _) = gb.run();
    assert_eq!(results, truth);
}

#[test]
fn all_similarity_systems_agree_on_answers() {
    let s = setup();
    let sigma = 2;
    let spec = derive_similarity_query(
        s.system.db(),
        &[],
        &DeriveConfig {
            size: 5,
            kind: QueryKind::WorstCase,
            seed: 13,
        },
        "W",
    )
    .expect("derivable");
    let q = spec.graph();
    let db = s.system.db();

    // PRAGUE
    let mut session = s.system.session(sigma);
    replay(&mut session, &spec);
    session.choose_similarity().unwrap();
    let out = session.run().unwrap();
    let QueryResults::Similar(prague_results) = out.results else {
        panic!("similarity query");
    };
    let mut prague_answers: Vec<(GraphId, usize)> = prague_results
        .matches
        .iter()
        .map(|m| (m.graph_id, m.distance))
        .collect();
    prague_answers.sort_unstable();

    // Baselines
    let gr = Grafil::new(&s.features).search(&q, sigma, db);
    let sg = Sigma::new(&s.features).search(&q, sigma, db);
    let dvp_index = DistVp::build(db, sigma);
    let dvp = dvp_index.search(&q, sigma, db);

    for (name, answer) in [("GR", &gr), ("SG", &sg), ("DVP", &dvp)] {
        let mut got = answer.matches.clone();
        got.sort_unstable();
        assert_eq!(got, prague_answers, "{name} disagrees with PRAGUE");
    }

    // and PRAGUE's candidate set should not be larger than Grafil's
    // (the paper's headline pruning claim, checked loosely: PRAGUE must not
    // be *worse* than the weakest baseline on worst-case queries at σ=2+)
    let prague_cands = session
        .similarity_candidates()
        .map(|c| c.distinct_candidates())
        .unwrap_or(0);
    assert!(
        prague_cands <= gr.candidates.len().max(sg.candidates.len()) * 2 + 10,
        "PRAGUE candidates ({prague_cands}) wildly above baselines ({}, {})",
        gr.candidates.len(),
        sg.candidates.len()
    );
}

#[test]
fn baseline_footprints_are_reported() {
    let s = setup();
    let gr = Grafil::new(&s.features);
    let sg = Sigma::new(&s.features);
    assert_eq!(gr.footprint(), sg.footprint(), "GR and SG share the index");
    assert!(gr.footprint().memory_bytes > 0);
    let dvp1 = DistVp::build(s.system.db(), 1);
    let dvp3 = DistVp::build(s.system.db(), 3);
    assert!(
        dvp3.footprint().memory_bytes > dvp1.footprint().memory_bytes,
        "DVP index grows with sigma"
    );
    assert_eq!(gr.name(), "GR");
    assert_eq!(sg.name(), "SG");
    assert_eq!(dvp1.name(), "DVP");
}
