//! Shared helpers for the cross-crate integration tests.
#![allow(dead_code)] // each [[test]] target uses a different subset

use prague::{Session, StepOutcome};
use prague_datagen::QuerySpec;
use prague_graph::{GraphDb, GraphId};

/// Replay a query spec into a session in default formulation order.
pub fn replay(session: &mut Session<'_>, spec: &QuerySpec) -> Vec<StepOutcome> {
    replay_sequence(session, spec, &(0..spec.edges.len()).collect::<Vec<_>>())
}

/// Replay a query spec in a custom edge order (indices into `spec.edges`).
pub fn replay_sequence(
    session: &mut Session<'_>,
    spec: &QuerySpec,
    order: &[usize],
) -> Vec<StepOutcome> {
    let nodes: Vec<_> = spec
        .node_labels
        .iter()
        .map(|&l| session.add_node(l))
        .collect();
    order
        .iter()
        .map(|&i| {
            let (u, v) = spec.edges[i];
            session
                .add_edge(nodes[u as usize], nodes[v as usize])
                .expect("spec edges are valid")
        })
        .collect()
}

/// Brute-force exact containment answer.
pub fn oracle_containment(q: &prague_graph::Graph, db: &GraphDb) -> Vec<GraphId> {
    let order = prague_graph::vf2::MatchOrder::new(q);
    db.iter()
        .filter(|(_, g)| prague_graph::vf2::is_subgraph_with_order(q, g, &order))
        .map(|(id, _)| id)
        .collect()
}

/// Brute-force similarity answer: `(id, dist)` for every graph with
/// `dist <= sigma` *and at least one common edge* (`dist < |q|`) —
/// PRAGUE's similarity levels stop at 1, so a graph sharing nothing with
/// the query is never reported even when `sigma >= |q|`. Exact matches
/// appear at distance 0 and rank first.
pub fn oracle_similarity(
    q: &prague_graph::Graph,
    db: &GraphDb,
    sigma: usize,
) -> Vec<(GraphId, usize)> {
    db.iter()
        .filter_map(|(id, g)| {
            let d = prague_graph::mccs::subgraph_distance(q, g).expect("small query");
            (d <= sigma && d < q.edge_count()).then_some((id, d))
        })
        .collect()
}
