//! Service-layer integration: the multi-session query service must be a
//! transparent multiplexer over single-user sessions.
//!
//! Four angles, mirroring the service contract in ARCHITECTURE.md
//! § "Service layer":
//!
//! * **cross-session determinism** (proptest): N sessions replaying N
//!   edit scripts *concurrently* through the manager — protocol frames,
//!   OS interleaving, fair-gate admission and all — observe exactly the
//!   per-step statuses, candidate counts, suggestions, results, and
//!   total `verify.vf2_states` of the same N scripts replayed
//!   *sequentially* on plain borrowed `Session`s;
//! * **protocol robustness**: a storm of malformed, oversized, and
//!   abruptly-disconnected TCP connections produces typed error frames
//!   and clean teardown — never a panic, never a leaked session, and
//!   `par.poisoned == 0` afterwards;
//! * **fairness**: a 12-edge heavy session hammering the shared pool
//!   cannot starve 32 light sessions out of interactive step latency;
//! * **docs drift**: the `srv-names` table in ARCHITECTURE.md matches
//!   `prague_obs::names::SRV_ALL`, and live service traffic emits only
//!   documented `srv.*` metrics.

use prague::session::{Session, StepStatus};
use prague::{PragueSystem, QueryResults, SystemParams};
use prague_datagen::{derive_containment_query, MoleculeConfig, QuerySpec};
use prague_graph::{Graph, GraphDb, Label, NodeId};
use prague_obs::json::{self, Value};
use prague_obs::{names, Obs};
use prague_server::{Server, ServerConfig, SessionManager, SystemClock};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// shared fixtures (same shapes as integration_par.rs)
// ---------------------------------------------------------------------------

fn connected_graph(max_n: usize, label_count: u16) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..label_count, n);
        let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..=2);
        (labels, parents, extras).prop_map(move |(labels, parents, extras)| {
            let mut g = Graph::new();
            for &l in &labels {
                g.add_node(Label(l));
            }
            for (i, &p) in parents.iter().enumerate() {
                g.add_edge((i + 1) as NodeId, (p as usize % (i + 1)) as NodeId)
                    .unwrap();
            }
            for &(a, b) in &extras {
                if a != b {
                    let _ = g.add_edge(a as NodeId, b as NodeId);
                }
            }
            g
        })
    })
}

fn small_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(connected_graph(6, 3), 4..10).prop_map(GraphDb::from_graphs)
}

/// A query spec from a random connected graph, edges in connected growth
/// order.
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    connected_graph(5, 3).prop_map(|g| {
        let mut order: Vec<u32> = Vec::new();
        let mut wired = std::collections::HashSet::new();
        while order.len() < g.edge_count() {
            for e in 0..g.edge_count() as u32 {
                if order.contains(&e) {
                    continue;
                }
                let edge = g.edge(e);
                if order.is_empty() || wired.contains(&edge.u) || wired.contains(&edge.v) {
                    order.push(e);
                    wired.insert(edge.u);
                    wired.insert(edge.v);
                }
            }
        }
        let mut node_map = vec![u32::MAX; g.node_count()];
        let mut node_labels = Vec::new();
        let mut edges = Vec::new();
        for &e in &order {
            let edge = g.edge(e);
            for &n in &[edge.u, edge.v] {
                if node_map[n as usize] == u32::MAX {
                    node_map[n as usize] = node_labels.len() as u32;
                    node_labels.push(g.label(n));
                }
            }
            edges.push((node_map[edge.u as usize], node_map[edge.v as usize]));
        }
        QuerySpec {
            name: "P".into(),
            node_labels,
            edges,
            similar_at: None,
        }
    })
}

fn build(db: GraphDb) -> PragueSystem {
    PragueSystem::build(
        db,
        SystemParams {
            alpha: 0.3,
            beta: 2,
            max_fragment_edges: 6,
            ..Default::default()
        },
    )
    .expect("builds")
}

/// Molecule fixture mined shallow so multi-edge queries always verify on
/// the shared pool.
fn shallow_molecule_system(threads: usize) -> PragueSystem {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 150,
        seed: 0x0B51,
        ..Default::default()
    });
    let mut system = PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.1,
            beta: 2,
            max_fragment_edges: 3,
            ..Default::default()
        },
    )
    .expect("system builds");
    system.set_obs(Obs::enabled());
    if threads > 1 {
        system.set_threads(threads);
    }
    system
}

// ---------------------------------------------------------------------------
// response parsing helpers
// ---------------------------------------------------------------------------

fn parsed(line: &str) -> Value {
    json::parse(line).unwrap_or_else(|e| panic!("response not valid JSON ({e}): {line}"))
}

fn field_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field '{key}' in {v:?}")) as u64
}

fn field_str(v: &Value, key: &str) -> String {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field '{key}' in {v:?}"))
        .to_owned()
}

fn assert_ok(v: &Value, line: &str) {
    let ok = match v.get("ok") {
        Some(Value::Bool(b)) => *b,
        _ => false,
    };
    assert!(ok, "frame not ok: {line}");
}

// ---------------------------------------------------------------------------
// cross-session determinism (the differential proptest)
// ---------------------------------------------------------------------------

/// Everything a replayed script makes observable through the protocol,
/// with timing fields excluded.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// Per edge step: (status, candidate count, suggested edge if any).
    steps: Vec<(String, u64, Option<u64>)>,
    /// Per Run (one after every edge): (kind, results). Exact matches
    /// carry distance 0.
    runs: Vec<(String, Vec<(u64, u64)>)>,
}

fn status_name(s: StepStatus) -> &'static str {
    match s {
        StepStatus::Frequent => "frequent",
        StepStatus::Infrequent => "infrequent",
        StepStatus::Similar => "similar",
    }
}

/// Reference replay: a plain borrowed session, no service in sight.
fn replay_plain(session: &mut Session<'_>, spec: &QuerySpec) -> Trace {
    let mut trace = Trace {
        steps: Vec::new(),
        runs: Vec::new(),
    };
    let nodes: Vec<_> = spec
        .node_labels
        .iter()
        .map(|&l| session.add_node(l))
        .collect();
    for &(u, v) in &spec.edges {
        let step = session
            .add_edge(nodes[u as usize], nodes[v as usize])
            .expect("spec edges are valid");
        trace.steps.push((
            status_name(step.status).to_owned(),
            step.candidate_count as u64,
            step.suggestion.as_ref().map(|s| u64::from(s.edge)),
        ));
        let outcome = session.run().expect("runnable mid-formulation");
        let (kind, results) = match outcome.results {
            QueryResults::Exact(ids) => (
                "exact".to_owned(),
                ids.iter().map(|&g| (u64::from(g), 0)).collect(),
            ),
            QueryResults::Similar(sim) => (
                "similar".to_owned(),
                sim.matches
                    .iter()
                    .map(|m| (u64::from(m.graph_id), m.distance as u64))
                    .collect(),
            ),
        };
        trace.runs.push((kind, results));
    }
    trace
}

/// Service replay: the same script through protocol frames against the
/// shared manager.
fn replay_service(mgr: &SessionManager, spec: &QuerySpec, sigma: usize) -> Trace {
    let mut trace = Trace {
        steps: Vec::new(),
        runs: Vec::new(),
    };
    let open = mgr.handle_line(&format!("{{\"op\":\"open\",\"sigma\":{sigma}}}"), None);
    let open_v = parsed(&open);
    assert_ok(&open_v, &open);
    let sid = field_u64(&open_v, "session");
    for (i, &l) in spec.node_labels.iter().enumerate() {
        let resp = mgr.handle_line(
            &format!("{{\"op\":\"node\",\"session\":{sid},\"label\":{}}}", l.0),
            None,
        );
        let v = parsed(&resp);
        assert_ok(&v, &resp);
        assert_eq!(field_u64(&v, "node"), i as u64, "canvas ids are dense");
    }
    for &(u, v) in &spec.edges {
        let resp = mgr.handle_line(
            &format!("{{\"op\":\"edge\",\"session\":{sid},\"u\":{u},\"v\":{v}}}"),
            None,
        );
        let ev = parsed(&resp);
        assert_ok(&ev, &resp);
        trace.steps.push((
            field_str(&ev, "status"),
            field_u64(&ev, "candidates"),
            ev.get("suggested_edge")
                .and_then(Value::as_f64)
                .map(|f| f as u64),
        ));
        let run = mgr.handle_line(&format!("{{\"op\":\"run\",\"session\":{sid}}}"), None);
        let rv = parsed(&run);
        assert_ok(&rv, &run);
        let results = rv
            .get("results")
            .and_then(Value::as_array)
            .expect("run carries results")
            .iter()
            .map(|m| match m {
                Value::Number(id) => (*id as u64, 0u64),
                obj => (field_u64(obj, "graph"), field_u64(obj, "distance")),
            })
            .collect();
        trace.runs.push((field_str(&rv, "kind"), results));
    }
    let close = mgr.handle_line(&format!("{{\"op\":\"close\",\"session\":{sid}}}"), None);
    assert_ok(&parsed(&close), &close);
    trace
}

fn vf2_states(obs: &Obs) -> u64 {
    obs.snapshot()
        .expect("obs enabled")
        .counter(names::VERIFY_VF2_STATES)
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole differential: concurrent multi-session service
    /// replay ≡ sequential single-session replay, per step and in total
    /// VF2 accounting, at 1 and 4 verification threads.
    #[test]
    fn concurrent_sessions_match_sequential_replay(
        db in small_db(),
        specs in proptest::collection::vec(query_spec(), 2..5),
        sigma in 1usize..3,
    ) {
        for threads in [1usize, 4] {
            let mut system = build(db.clone());
            if threads > 1 {
                system.set_threads(threads);
            }

            // Phase 1 — sequential reference on borrowed sessions.
            let seq_obs = Obs::enabled();
            system.set_obs(seq_obs.clone());
            let mut expected = Vec::with_capacity(specs.len());
            for spec in &specs {
                let mut session = system.session(sigma);
                expected.push(replay_plain(&mut session, spec));
            }
            let seq_states = vf2_states(&seq_obs);

            // Phase 2 — the same scripts, concurrently, through the
            // service (protocol frames, fair gate, shared Arc system).
            let srv_obs = Obs::enabled();
            system.set_obs(srv_obs.clone());
            let mgr = SessionManager::new(
                Arc::new(system),
                ServerConfig::default(),
                Arc::new(SystemClock::new()),
            );
            let got: Vec<Trace> = std::thread::scope(|scope| {
                let handles: Vec<_> = specs
                    .iter()
                    .map(|spec| scope.spawn(|| replay_service(&mgr, spec, sigma)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("session thread"))
                    .collect()
            });
            let srv_states = vf2_states(&srv_obs);

            prop_assert_eq!(
                &got, &expected,
                "service traces diverged from sequential replay at {} threads", threads
            );
            prop_assert_eq!(
                srv_states, seq_states,
                "vf2 accounting diverged at {} threads", threads
            );
            prop_assert_eq!(mgr.session_count(), 0, "all sessions closed");
        }
    }
}

// ---------------------------------------------------------------------------
// protocol robustness over TCP
// ---------------------------------------------------------------------------

fn service(threads: usize, cfg: ServerConfig) -> Arc<SessionManager> {
    Arc::new(SessionManager::new(
        Arc::new(shallow_molecule_system(threads)),
        cfg,
        Arc::new(SystemClock::new()),
    ))
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream
        .write_all(line.as_bytes())
        .and_then(|_| stream.write_all(b"\n"))
        .expect("client write");
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("client read");
    line.trim().to_owned()
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(20), "timed out: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn malformed_and_hostile_connections_get_typed_errors_and_clean_teardown() {
    let mgr = service(2, ServerConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&mgr)).expect("bind");
    let addr = server.local_addr();

    // A storm of malformed frames on one connection: every one gets a
    // typed error frame and the connection stays usable throughout.
    let (mut stream, mut reader) = connect(addr);
    let hostile: &[(&str, &str)] = &[
        ("this is not json", "bad_json"),
        ("{\"op\":\"warp\"}", "unknown_op"),
        ("{}", "bad_frame"),
        ("[1,2,3]", "bad_frame"),
        ("\"just a string\"", "bad_frame"),
        ("{\"op\":\"edge\",\"session\":1,\"u\":0}", "bad_frame"),
        ("{\"op\":\"run\",\"session\":424242}", "unknown_session"),
        ("{\"op\":\"open\",\"sigma\":-3}", "bad_frame"),
        (
            "{\"op\":\"node\",\"session\":1,\"label\":\"C\"}",
            "bad_frame",
        ),
        ("{\"op\":\"run\",\"session\":1e40}", "bad_frame"),
    ];
    for &(frame, code) in hostile {
        send_line(&mut stream, frame);
        let resp = read_line(&mut reader);
        let v = parsed(&resp);
        assert_eq!(field_str(&v, "error"), code, "for frame {frame}: {resp}");
    }
    // A nesting bomb inside the line cap: 16k `[`s must come back as
    // one typed bad_json frame (the parser's depth cap), not recurse
    // the connection thread's stack into an abort.
    let bomb = "[".repeat(16 * 1024);
    send_line(&mut stream, &bomb);
    let resp = read_line(&mut reader);
    assert_eq!(field_str(&parsed(&resp), "error"), "bad_json", "{resp}");
    // ... and a valid frame on the same connection still works.
    send_line(&mut stream, "{\"op\":\"ping\"}");
    let pong = read_line(&mut reader);
    assert_ok(&parsed(&pong), &pong);
    drop(stream);

    // An unterminated line one byte over the cap: one line_too_long
    // frame, then the server hangs up (EOF on the client side). Exactly
    // MAX_LINE + 1 bytes so the server has drained everything we sent
    // before it closes — the FIN, and the error frame, arrive cleanly.
    let (mut stream, mut reader) = connect(addr);
    let garbage = vec![b'x'; prague_server::MAX_LINE + 1];
    stream.write_all(&garbage).expect("oversized write");
    stream.flush().expect("flush");
    let resp = read_line(&mut reader);
    assert_eq!(field_str(&parsed(&resp), "error"), "line_too_long");
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "server must close after an oversized line");
    drop(stream);

    // A newline-*terminated* line one byte over the cap: same documented
    // contract — one line_too_long frame, then the server hangs up.
    // (If the kernel happens to fragment delivery so the cap is crossed
    // before the newline arrives, the unterminated path answers instead;
    // both reply line_too_long and close, but a close with unread bytes
    // can RST the frame away — so the frame is asserted only when it
    // arrives, the closure always.)
    let (mut stream, mut reader) = connect(addr);
    let mut long_line = vec![b'x'; prague_server::MAX_LINE + 1];
    long_line.push(b'\n');
    stream.write_all(&long_line).expect("oversized write");
    stream.flush().expect("flush");
    let mut first = String::new();
    if reader.read_line(&mut first).is_ok() && !first.trim().is_empty() {
        assert_eq!(field_str(&parsed(first.trim()), "error"), "line_too_long");
    }
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(
        n, 0,
        "server must close after a terminated oversized line too"
    );
    drop(stream);

    // Mid-verify disconnect: a 4-edge carbon chain is never an indexed
    // fragment here (shallow mining), so a speculative verify batch is
    // in flight on the pool — then the client vanishes without a close
    // frame. The transport must close the session, whose drop cancels
    // the batch.
    let (mut stream, mut reader) = connect(addr);
    send_line(&mut stream, "{\"op\":\"open\"}");
    let open = read_line(&mut reader);
    let sid = field_u64(&parsed(&open), "session");
    for _ in 0..5 {
        send_line(
            &mut stream,
            &format!("{{\"op\":\"node\",\"session\":{sid},\"name\":\"C\"}}"),
        );
        read_line(&mut reader);
    }
    for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4)] {
        send_line(
            &mut stream,
            &format!("{{\"op\":\"edge\",\"session\":{sid},\"u\":{u},\"v\":{v}}}"),
        );
        let resp = read_line(&mut reader);
        assert_ok(&parsed(&resp), &resp);
    }
    assert_eq!(mgr.session_count(), 1);
    drop((stream, reader)); // abrupt: no close frame (both fd clones!)
    wait_until("abandoned session reaped", || mgr.session_count() == 0);

    // Half-close: open a session, shut down the write side only. The
    // server sees EOF and tears the connection's sessions down.
    let (stream, mut reader) = connect(addr);
    let mut writer = stream.try_clone().expect("clone");
    send_line(&mut writer, "{\"op\":\"open\"}");
    let open = read_line(&mut reader);
    assert_ok(&parsed(&open), &open);
    assert_eq!(mgr.session_count(), 1);
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    wait_until("half-closed session reaped", || mgr.session_count() == 0);
    drop(stream);

    // After the storm: a fresh connection runs a full happy path …
    let (mut stream, mut reader) = connect(addr);
    send_line(&mut stream, "{\"op\":\"open\"}");
    let sid = field_u64(&parsed(&read_line(&mut reader)), "session");
    for name in ["C", "C", "C"] {
        send_line(
            &mut stream,
            &format!("{{\"op\":\"node\",\"session\":{sid},\"name\":\"{name}\"}}"),
        );
        read_line(&mut reader);
    }
    for (u, v) in [(0u32, 1u32), (1, 2)] {
        send_line(
            &mut stream,
            &format!("{{\"op\":\"edge\",\"session\":{sid},\"u\":{u},\"v\":{v}}}"),
        );
        let resp = read_line(&mut reader);
        assert_ok(&parsed(&resp), &resp);
    }
    send_line(
        &mut stream,
        &format!("{{\"op\":\"run\",\"session\":{sid}}}"),
    );
    let run = read_line(&mut reader);
    let rv = parsed(&run);
    assert_ok(&rv, &run);
    assert_eq!(field_str(&rv, "kind"), "exact", "{run}");
    send_line(
        &mut stream,
        &format!("{{\"op\":\"close\",\"session\":{sid}}}"),
    );
    let close = read_line(&mut reader);
    assert_ok(&parsed(&close), &close);

    // … and nothing was poisoned or leaked along the way.
    let snap = mgr.system().obs().snapshot().expect("obs enabled");
    assert_eq!(
        snap.counter(names::PAR_POISONED).unwrap_or(0),
        0,
        "the storm must not poison any lock"
    );
    assert!(snap.counter(names::SRV_FRAME_ERRORS).unwrap_or(0) >= hostile.len() as u64);
    assert_eq!(mgr.session_count(), 0);
    let stats = mgr.lifecycle_stats();
    assert_eq!(
        stats.opened, stats.closed,
        "every opened session was closed"
    );
    server.shutdown();
}

#[test]
fn sessions_are_connection_scoped() {
    let mgr = service(1, ServerConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&mgr)).expect("bind");
    let addr = server.local_addr();

    let (mut conn_a, mut reader_a) = connect(addr);
    send_line(&mut conn_a, "{\"op\":\"open\"}");
    let open = read_line(&mut reader_a);
    let sid = field_u64(&parsed(&open), "session");

    // Another connection guesses the (sequential) id: every session-
    // addressed op — close included — is answered as if the session did
    // not exist, so it can neither observe nor destroy A's state.
    let (mut conn_b, mut reader_b) = connect(addr);
    for frame in [
        format!("{{\"op\":\"node\",\"session\":{sid},\"name\":\"C\"}}"),
        format!("{{\"op\":\"run\",\"session\":{sid}}}"),
        format!("{{\"op\":\"close\",\"session\":{sid}}}"),
    ] {
        send_line(&mut conn_b, &frame);
        let resp = read_line(&mut reader_b);
        assert_eq!(
            field_str(&parsed(&resp), "error"),
            "unknown_session",
            "for frame {frame}: {resp}"
        );
    }
    // B can still open and use its own session …
    send_line(&mut conn_b, "{\"op\":\"open\"}");
    let b_open = read_line(&mut reader_b);
    let b_sid = field_u64(&parsed(&b_open), "session");
    assert_ne!(b_sid, sid);
    send_line(
        &mut conn_b,
        &format!("{{\"op\":\"node\",\"session\":{b_sid},\"name\":\"C\"}}"),
    );
    let resp = read_line(&mut reader_b);
    assert_ok(&parsed(&resp), &resp);

    // … and A's session survived the probing, still usable by A.
    assert!(mgr.is_live(sid));
    send_line(
        &mut conn_a,
        &format!("{{\"op\":\"node\",\"session\":{sid},\"name\":\"C\"}}"),
    );
    let resp = read_line(&mut reader_a);
    assert_ok(&parsed(&resp), &resp);
    send_line(
        &mut conn_a,
        &format!("{{\"op\":\"close\",\"session\":{sid}}}"),
    );
    let close = read_line(&mut reader_a);
    assert_ok(&parsed(&close), &close);
    drop((conn_a, reader_a, conn_b, reader_b));
    server.shutdown();
}

#[test]
fn connection_cap_refuses_extra_connections_with_a_typed_frame() {
    let mgr = service(
        1,
        ServerConfig {
            max_conns: 1,
            ..Default::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&mgr)).expect("bind");
    let addr = server.local_addr();

    // First connection: admitted, live (the pong proves its thread is
    // registered with the accept loop before we try the second one).
    let (mut one, mut reader_one) = connect(addr);
    send_line(&mut one, "{\"op\":\"ping\"}");
    let pong = read_line(&mut reader_one);
    assert_ok(&parsed(&pong), &pong);

    // Second connection: refused with one typed frame, then EOF.
    let (_two, mut reader_two) = connect(addr);
    let resp = read_line(&mut reader_two);
    assert_eq!(field_str(&parsed(&resp), "error"), "too_many_connections");
    let mut rest = Vec::new();
    let n = reader_two.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "refused connection must be closed");

    // Dropping the admitted connection frees its slot (the accept loop
    // reaps finished threads on the next accept).
    drop((one, reader_one));
    wait_until("freed connection slot admits a newcomer", || {
        let Ok(mut s) = TcpStream::connect(addr) else {
            return false;
        };
        if s.set_read_timeout(Some(Duration::from_secs(5))).is_err() {
            return false;
        }
        let mut r = BufReader::new(match s.try_clone() {
            Ok(c) => c,
            Err(_) => return false,
        });
        if s.write_all(b"{\"op\":\"ping\"}\n").is_err() {
            return false;
        }
        let mut line = String::new();
        r.read_line(&mut line).ok();
        line.contains("\"pong\":true")
    });
    server.shutdown();
}

// ---------------------------------------------------------------------------
// fairness: heavy vs light sessions
// ---------------------------------------------------------------------------

/// Replay `spec` through the service once, returning each edge frame's
/// handling latency.
fn timed_replay(mgr: &SessionManager, spec: &QuerySpec) -> Vec<Duration> {
    let open = mgr.handle_line("{\"op\":\"open\"}", None);
    let sid = field_u64(&parsed(&open), "session");
    for &l in &spec.node_labels {
        mgr.handle_line(
            &format!("{{\"op\":\"node\",\"session\":{sid},\"label\":{}}}", l.0),
            None,
        );
    }
    let mut latencies = Vec::with_capacity(spec.edges.len());
    for &(u, v) in &spec.edges {
        let t0 = Instant::now();
        let resp = mgr.handle_line(
            &format!("{{\"op\":\"edge\",\"session\":{sid},\"u\":{u},\"v\":{v}}}"),
            None,
        );
        latencies.push(t0.elapsed());
        let ev = parsed(&resp);
        assert_ok(&ev, &resp);
    }
    mgr.handle_line(&format!("{{\"op\":\"run\",\"session\":{sid}}}"), None);
    mgr.handle_line(&format!("{{\"op\":\"close\",\"session\":{sid}}}"), None);
    latencies
}

fn p99(mut xs: Vec<Duration>) -> Duration {
    assert!(!xs.is_empty());
    xs.sort_unstable();
    xs[(xs.len() - 1) * 99 / 100]
}

#[test]
fn heavy_session_cannot_starve_light_sessions() {
    let mgr = service(
        4,
        ServerConfig {
            fair_slots: 4,
            per_session_quota: 1,
            ..Default::default()
        },
    );
    let db = mgr.system().db();
    let heavy_spec = (3..100u64)
        .find_map(|seed| derive_containment_query(db, 12, seed, "heavy"))
        .expect("a 12-edge containment query exists");
    let light_spec = (3..100u64)
        .find_map(|seed| derive_containment_query(db, 2, seed, "light"))
        .expect("a 2-edge containment query exists");

    // Solo baseline: light sessions with the service to themselves.
    let mut solo = Vec::new();
    for _ in 0..20 {
        solo.extend(timed_replay(&mgr, &light_spec));
    }
    let solo_p99 = p99(solo);

    // Storm: one heavy session replays a 12-edge script in a loop while
    // 32 light sessions (8 workers × 4 sessions each) keep stepping.
    let stop = AtomicBool::new(false);
    let light_latencies: Vec<Duration> = std::thread::scope(|scope| {
        let heavy = scope.spawn(|| {
            let mut rounds = 0u32;
            loop {
                timed_replay(&mgr, &heavy_spec);
                rounds += 1;
                if stop.load(Ordering::SeqCst) {
                    return rounds;
                }
            }
        });
        let workers: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    for _ in 0..4 {
                        mine.extend(timed_replay(&mgr, &light_spec));
                    }
                    mine
                })
            })
            .collect();
        let collected: Vec<Duration> = workers
            .into_iter()
            .flat_map(|h| h.join().expect("light worker"))
            .collect();
        stop.store(true, Ordering::SeqCst);
        let rounds = heavy.join().expect("heavy worker");
        assert!(rounds >= 1, "the heavy session must actually run");
        collected
    });

    let light_p99 = p99(light_latencies);
    // Starvation looks like light steps queueing behind the heavy
    // session's entire pool backlog — hundreds of ms and up. The pinned
    // bound is deliberately generous (CPU oversubscription inflates
    // absolute numbers on CI) while staying far below that regime.
    let bound = solo_p99 * 50 + Duration::from_millis(50);
    assert!(
        light_p99 <= bound,
        "light sessions starved: p99 {light_p99:?} vs solo {solo_p99:?} (bound {bound:?})"
    );

    // The gate's wait accounting saw traffic.
    let snap = mgr.system().obs().snapshot().expect("obs enabled");
    assert!(snap.counter(names::SRV_FRAMES).unwrap_or(0) > 0);
    assert!(snap.histogram(names::SRV_QUEUE_WAIT_NS).is_some());
}

// ---------------------------------------------------------------------------
// docs drift: the srv-names table
// ---------------------------------------------------------------------------

/// Parse the rows between the `srv-names` markers of ARCHITECTURE.md
/// into `(name, kind-label)` pairs, in document order (same parser shape
/// as `integration_obs.rs` uses for the core table).
fn documented_srv_metrics() -> Vec<(String, String)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ARCHITECTURE.md");
    let text = std::fs::read_to_string(path).expect("ARCHITECTURE.md readable");
    let begin = text
        .find("<!-- srv-names:begin -->")
        .expect("srv-names:begin marker present");
    let end = text
        .find("<!-- srv-names:end -->")
        .expect("srv-names:end marker present");
    let mut rows = Vec::new();
    for line in text[begin..end].lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some(first) = cells.nth(1) else { continue };
        let Some(name) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue;
        };
        let kind = cells.next().expect("kind cell present").to_string();
        rows.push((name.to_string(), kind));
    }
    rows
}

#[test]
fn architecture_srv_table_matches_names_in_code() {
    let documented = documented_srv_metrics();
    let in_code: Vec<(String, String)> = names::SRV_ALL
        .iter()
        .map(|&(name, kind)| (name.to_string(), kind.label().to_string()))
        .collect();
    assert_eq!(
        documented, in_code,
        "ARCHITECTURE.md § Service layer and prague_obs::names::SRV_ALL \
         must list exactly the same metrics in the same order"
    );
}

/// Live service traffic emits `srv.*` metrics — and only documented ones.
#[test]
fn service_traffic_emits_only_documented_srv_metrics() {
    let mgr = service(1, ServerConfig::default());
    let spec = (3..100u64)
        .find_map(|seed| derive_containment_query(mgr.system().db(), 2, seed, "emit"))
        .expect("a 2-edge containment query exists");
    timed_replay(&mgr, &spec);
    mgr.handle_line("{\"op\":\"stats\"}", None);
    mgr.handle_line("not json", None);
    let snap = mgr.system().obs().snapshot().expect("obs enabled");
    let documented: std::collections::BTreeSet<&str> =
        names::SRV_ALL.iter().map(|&(n, _)| n).collect();
    for name in snap.counter_names() {
        if name.starts_with("srv.") {
            assert!(
                documented.contains(name.as_str()),
                "undocumented srv counter: {name}"
            );
        }
    }
    for name in snap.histogram_names() {
        if name.starts_with("srv.") {
            assert!(
                documented.contains(name.as_str()),
                "undocumented srv histogram: {name}"
            );
        }
    }
    for &counter in &[
        names::SRV_SESSIONS_OPENED,
        names::SRV_SESSIONS_CLOSED,
        names::SRV_FRAMES,
        names::SRV_FRAME_ERRORS,
    ] {
        assert!(
            snap.counter(counter).unwrap_or(0) > 0,
            "expected traffic on {counter}"
        );
    }
    assert!(snap.histogram(names::SRV_FRAME_NS).is_some());
}
