//! Differential suite for the sharded index engine: a system built with
//! `shards > 1` must be observably *byte-identical* to the classic
//! unsharded system — per-step candidate sets, Run results after every
//! step, deletion and relabel behavior, similarity rankings, and the
//! `verify.vf2_states` accounting — across full edit scripts, at every
//! shard count, sequentially and on a verification pool.

#[path = "common/mod.rs"]
mod common;

use prague::{PragueSystem, QueryResults, SystemParams};
use prague_datagen::{MoleculeConfig, QuerySpec};
use prague_graph::{Graph, GraphDb, GraphId, Label, NodeId};
use prague_obs::{names, Obs};
use proptest::prelude::*;

fn connected_graph(max_n: usize, label_count: u16) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..label_count, n);
        let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
        let extras = proptest::collection::vec((0..n, 0..n), 0..=2);
        (labels, parents, extras).prop_map(move |(labels, parents, extras)| {
            let mut g = Graph::new();
            for &l in &labels {
                g.add_node(Label(l));
            }
            for (i, &p) in parents.iter().enumerate() {
                g.add_edge((i + 1) as NodeId, (p as usize % (i + 1)) as NodeId)
                    .unwrap();
            }
            for &(a, b) in &extras {
                if a != b {
                    let _ = g.add_edge(a as NodeId, b as NodeId);
                }
            }
            g
        })
    })
}

fn small_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(connected_graph(6, 3), 4..10).prop_map(GraphDb::from_graphs)
}

/// A query spec from a random connected graph, edges in connected growth
/// order (same shape as `integration_par.rs`).
fn query_spec() -> impl Strategy<Value = QuerySpec> {
    connected_graph(5, 3).prop_map(|g| {
        let mut order: Vec<u32> = Vec::new();
        let mut wired = std::collections::HashSet::new();
        while order.len() < g.edge_count() {
            for e in 0..g.edge_count() as u32 {
                if order.contains(&e) {
                    continue;
                }
                let edge = g.edge(e);
                if order.is_empty() || wired.contains(&edge.u) || wired.contains(&edge.v) {
                    order.push(e);
                    wired.insert(edge.u);
                    wired.insert(edge.v);
                }
            }
        }
        let mut node_map = vec![u32::MAX; g.node_count()];
        let mut node_labels = Vec::new();
        let mut edges = Vec::new();
        for &e in &order {
            let edge = g.edge(e);
            for &n in &[edge.u, edge.v] {
                if node_map[n as usize] == u32::MAX {
                    node_map[n as usize] = node_labels.len() as u32;
                    node_labels.push(g.label(n));
                }
            }
            edges.push((node_map[edge.u as usize], node_map[edge.v as usize]));
        }
        QuerySpec {
            name: "S".into(),
            node_labels,
            edges,
            similar_at: None,
        }
    })
}

fn build(db: GraphDb, alpha: f64, shards: usize) -> PragueSystem {
    PragueSystem::build(
        db,
        SystemParams {
            alpha,
            beta: 2,
            max_fragment_edges: 6,
            shards,
            ..Default::default()
        },
    )
    .expect("builds")
}

fn result_ids(r: &QueryResults) -> Vec<GraphId> {
    match r {
        QueryResults::Exact(ids) => ids.clone(),
        QueryResults::Similar(s) => s.ids(),
    }
}

/// Everything a full edit script makes observable, for cross-shard-count
/// comparison — including the VF2 state accounting, which must not drift
/// however candidates are bucketed across shards.
#[derive(Debug, Default, PartialEq)]
struct Trace {
    step_candidates: Vec<(usize, Vec<GraphId>)>,
    step_results: Vec<Vec<GraphId>>,
    after_delete: Option<(Vec<GraphId>, Vec<GraphId>)>,
    after_relabel: Option<(Vec<GraphId>, Vec<GraphId>)>,
    similar: Vec<(GraphId, usize)>,
    vf2_states: u64,
}

/// Replay `spec` as an edit script: add each edge (Run after every add),
/// delete the last removable edge and Run, relabel node 0 and Run, then
/// switch to similarity and Run once more.
fn run_script(system: &PragueSystem, spec: &QuerySpec, sigma: usize) -> Trace {
    let mut trace = Trace::default();
    let mut session = system.session(sigma);
    let nodes: Vec<_> = spec
        .node_labels
        .iter()
        .map(|&l| session.add_node(l))
        .collect();
    let mut edge_ids = Vec::new();
    for &(u, v) in &spec.edges {
        let step = session
            .add_edge(nodes[u as usize], nodes[v as usize])
            .expect("spec edges are valid");
        edge_ids.push(step.edge);
        trace
            .step_candidates
            .push((step.candidate_count, session.exact_candidates()));
        let outcome = session.run().expect("runnable mid-formulation");
        trace.step_results.push(result_ids(&outcome.results));
    }
    // Modify: delete the most recent deletable edge, then restore it.
    if let Some(&edge) = edge_ids
        .iter()
        .rev()
        .filter(|_| spec.edges.len() >= 2)
        .find(|&&e| session.query().edge_is_deletable(e))
    {
        session.delete_edge(edge).expect("checked deletable");
        let candidates = session.exact_candidates();
        let outcome = session.run().expect("runnable after delete");
        trace.after_delete = Some((candidates, result_ids(&outcome.results)));
        let idx = edge_ids.iter().position(|&e| e == edge).unwrap();
        let (u, v) = spec.edges[idx];
        session
            .add_edge(nodes[u as usize], nodes[v as usize])
            .expect("re-adding a deleted edge");
        session.run().expect("runnable after re-add");
    }
    // Relabel node 0 to the next label in the tiny alphabet and Run.
    if spec.edges.len() >= 2 {
        let new_label = Label((spec.node_labels[0].0 + 1) % 3);
        session
            .relabel_node(nodes[0], new_label)
            .expect("relabel is always expressible");
        let candidates = session.exact_candidates();
        let outcome = session.run().expect("runnable after relabel");
        trace.after_relabel = Some((candidates, result_ids(&outcome.results)));
    }
    session.choose_similarity().expect("similarity switch");
    let outcome = session.run().expect("runnable in similarity");
    if let QueryResults::Similar(results) = outcome.results {
        trace.similar = results
            .matches
            .iter()
            .map(|m| (m.graph_id, m.distance))
            .collect();
    }
    drop(session);
    trace.vf2_states = system
        .obs()
        .snapshot()
        .expect("obs enabled")
        .counter(names::VERIFY_VF2_STATES)
        .unwrap_or(0);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole differential property: systems built over the same
    /// database at 1, 2 and 8 shards — the 1-shard build being the
    /// classic unsharded backend — trace full edit scripts identically,
    /// both sequentially and on a 2-worker pool, down to the
    /// `verify.vf2_states` counter.
    #[test]
    fn sharded_system_is_byte_identical_to_unsharded(
        db in small_db(),
        spec in query_spec(),
        sigma in 1usize..3,
    ) {
        let mut reference: Option<Trace> = None;
        for shards in [1usize, 2, 8] {
            let mut system = build(db.clone(), 0.35, shards);
            prop_assert_eq!(system.shard_count(), shards);
            for threads in [1usize, 2] {
                system.set_threads(threads);
                system.set_obs(Obs::enabled()); // fresh counters per script
                let trace = run_script(&system, &spec, sigma);
                match &reference {
                    None => reference = Some(trace),
                    Some(base) => prop_assert_eq!(
                        base, &trace,
                        "trace diverged at {} shards / {} threads", shards, threads
                    ),
                }
            }
        }
    }
}

/// Molecule fixture mined shallow (≤ 3-edge fragments) so a 4-edge query
/// always needs verification — real VF2 work routed through the
/// shard-bucketed chunking.
fn molecule_system(shards: usize) -> PragueSystem {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 120,
        seed: 0x5AAD,
        ..Default::default()
    });
    PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.1,
            beta: 2,
            max_fragment_edges: 3,
            shards,
            ..Default::default()
        },
    )
    .expect("system builds")
}

fn chain_results(system: &PragueSystem) -> (Vec<GraphId>, Vec<GraphId>) {
    let c = system.labels().get("C").expect("carbon label");
    let s = system.labels().get("S").expect("sulfur label");
    let mut session = system.session(2);
    let labels = [c, c, c, s, c];
    let nodes: Vec<_> = labels.iter().map(|&l| session.add_node(l)).collect();
    for w in nodes.windows(2) {
        session.add_edge(w[0], w[1]).expect("connected step");
    }
    let candidates = session.exact_candidates();
    let outcome = session.run().expect("runnable");
    (candidates, result_ids(&outcome.results))
}

/// Live insertion keeps sharded and unsharded systems in lockstep: after
/// `insert_graph` the index epoch bumps, the merged FSG view includes the
/// new graph on its owning shard only, and query answers stay identical.
#[test]
fn insertion_keeps_sharded_answers_identical() {
    let extra = {
        // A C-C-C-S-C chain: guaranteed to match the probe query.
        let ds = prague_datagen::molecules_generate(&MoleculeConfig {
            graphs: 1,
            seed: 0xADD,
            ..Default::default()
        });
        let mut g = Graph::new();
        let c = ds.labels.get("C").expect("carbon label");
        let s = ds.labels.get("S").expect("sulfur label");
        let n: Vec<_> = [c, c, c, s, c].iter().map(|&l| g.add_node(l)).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1]).expect("fresh edge");
        }
        g
    };
    let mut reference: Option<(Vec<GraphId>, Vec<GraphId>)> = None;
    for shards in [1usize, 2, 8] {
        let mut system = molecule_system(shards);
        let epoch = system.index_epoch();
        let gid = system.insert_graph(extra.clone()).expect("insert");
        assert_eq!(gid as usize, system.db().len() - 1);
        assert!(system.index_epoch() > epoch, "epoch must bump on insert");
        let (candidates, results) = chain_results(&system);
        assert!(
            results.contains(&gid),
            "inserted chain must match at {shards} shards"
        );
        match &reference {
            None => reference = Some((candidates, results)),
            Some(base) => assert_eq!(
                base,
                &(candidates, results),
                "insertion answers diverged at {shards} shards"
            ),
        }
    }
}

/// The sharded build reports its accounting: per-shard wall times, the
/// serial merge, and the imbalance ratio, surfaced both through
/// `shard_stats()` and as `shard.*` counters on the obs handle.
#[test]
fn sharded_build_reports_stats_and_counters() {
    let mut system = molecule_system(4);
    assert_eq!(system.shard_count(), 4);
    let stats = system.shard_stats().expect("sharded backend").clone();
    assert_eq!(stats.shard_ms.len(), 4);
    assert!(stats.imbalance_x1000 >= 1000, "max shard >= even split");
    let obs = Obs::enabled();
    system.set_obs(obs.clone());
    let snap = obs.snapshot().expect("enabled");
    assert_eq!(
        snap.counter(names::SHARD_IMBALANCE_X1000),
        Some(stats.imbalance_x1000)
    );
    assert!(snap.counter(names::SHARD_MERGE_MS).is_some());
    // Unsharded systems expose no shard accounting.
    assert!(molecule_system(1).shard_stats().is_none());
}
