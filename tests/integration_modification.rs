//! Query-modification tests (Algorithm 6): deletion suggestions, SPIG-set
//! maintenance under deletion, and equivalence with from-scratch
//! formulation of the modified query.

#[path = "common/mod.rs"]
mod common;

use common::{oracle_containment, replay};
use prague::{PragueSystem, QueryResults, SystemParams};
use prague_datagen::{
    derive_containment_query, derive_similarity_query, DeriveConfig, MoleculeConfig, QueryKind,
    QuerySpec,
};

fn build_system() -> PragueSystem {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 200,
        mean_nodes: 12.0,
        ..Default::default()
    });
    PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.15,
            beta: 3,
            max_fragment_edges: 7,
            ..Default::default()
        },
    )
    .expect("system builds")
}

/// Formulate `spec` fresh and return its exact candidates after completion.
fn fresh_candidates(system: &PragueSystem, spec: &QuerySpec) -> Vec<u32> {
    let mut s = system.session(2);
    replay(&mut s, spec);
    s.exact_candidates().to_vec()
}

#[test]
fn suggestion_restores_nonempty_candidates() {
    let system = build_system();
    let spec = derive_similarity_query(
        system.db(),
        &[],
        &DeriveConfig {
            size: 5,
            kind: QueryKind::WorstCase,
            seed: 5,
        },
        "M",
    )
    .expect("derivable");
    let mut session = system.session(2);
    let steps = replay(&mut session, &spec);
    assert_eq!(session.exact_candidates().len(), 0);
    // the last step added the absent-pair edge; the suggestion must exist
    // and deleting it must restore candidates (the prefix has support >= 1)
    let last = steps.last().unwrap();
    let suggestion = last
        .suggestion
        .clone()
        .or_else(|| session.suggest_deletion().unwrap())
        .expect("a deletable edge exists");
    assert!(
        !suggestion.candidates.is_empty(),
        "suggested deletion should restore candidates"
    );
    let outcome = session.delete_edge(suggestion.edge).expect("deletable");
    assert_eq!(outcome.candidate_count, suggestion.candidates.len());
    assert!(!session.exact_candidates().is_empty());
}

#[test]
fn suggestion_maximizes_candidates() {
    let system = build_system();
    let spec = derive_similarity_query(
        system.db(),
        &[],
        &DeriveConfig {
            size: 6,
            kind: QueryKind::WorstCase,
            seed: 31,
        },
        "M",
    )
    .expect("derivable");
    let mut session = system.session(2);
    replay(&mut session, &spec);
    let options = prague::deletion_options(
        session.query(),
        session.spigs(),
        &system.indexes().a2f,
        &system.indexes().a2i,
        system.db().len(),
    )
    .unwrap();
    if options.is_empty() {
        return;
    }
    let best = options.iter().map(|&(_, c)| c).max().unwrap();
    let suggestion = session.suggest_deletion().unwrap().expect("options exist");
    assert_eq!(suggestion.candidates.len(), best);
}

#[test]
fn deletion_equals_fresh_formulation() {
    // After deleting an edge, candidates and final results must equal a
    // from-scratch session over the modified query.
    let system = build_system();
    for seed in [11u64, 13, 19] {
        let Some(spec) = derive_containment_query(system.db(), 5, seed, "D") else {
            continue;
        };
        let mut session = system.session(2);
        replay(&mut session, &spec);
        // delete the first deletable edge
        let Some(&label) = session
            .query()
            .live_labels()
            .iter()
            .find(|&&l| session.query().edge_is_deletable(l))
        else {
            continue;
        };
        // build the equivalent spec without that edge
        let deleted_idx = (label - 1) as usize; // labels are 1-based in add order
        let mut reduced = spec.clone();
        reduced.edges.remove(deleted_idx);
        // re-order so every prefix is connected
        let order = valid_order(&reduced);
        let reduced_ordered = QuerySpec {
            edges: order.iter().map(|&i| reduced.edges[i]).collect(),
            ..reduced.clone()
        };
        if !reduced_ordered.validate() {
            continue;
        }

        session.delete_edge(label).expect("deletable");
        let after: Vec<u32> = session.exact_candidates().to_vec();
        let fresh = fresh_candidates(&system, &reduced_ordered);
        assert_eq!(
            after, fresh,
            "seed {seed}: candidates diverge after deletion"
        );

        // final results agree with brute force
        let outcome = session.run().unwrap();
        if let QueryResults::Exact(ids) = outcome.results {
            assert_eq!(
                ids,
                oracle_containment(session.query().graph(), system.db())
            );
        }
    }
}

/// Any connected-prefix order of the spec's edges.
#[allow(clippy::needless_range_loop)]
fn valid_order(spec: &QuerySpec) -> Vec<usize> {
    let n = spec.edges.len();
    let mut order = Vec::new();
    let mut used = vec![false; n];
    let mut wired = std::collections::HashSet::new();
    while order.len() < n {
        let mut advanced = false;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let (u, v) = spec.edges[i];
            if order.is_empty() || wired.contains(&u) || wired.contains(&v) {
                used[i] = true;
                wired.insert(u);
                wired.insert(v);
                order.push(i);
                advanced = true;
            }
        }
        if !advanced {
            break; // disconnected remainder; caller validates
        }
    }
    order
}

#[test]
fn deletions_preserve_candidate_completeness() {
    let system = build_system();
    let spec = derive_containment_query(system.db(), 6, 3, "D").expect("derivable");
    let mut session = system.session(2);
    replay(&mut session, &spec);
    // delete two deletable edges
    for _ in 0..2 {
        let candidates: Vec<u32> = session
            .query()
            .live_labels()
            .into_iter()
            .filter(|&l| session.query().edge_is_deletable(l))
            .collect();
        if let Some(&l) = candidates.first() {
            session.delete_edge(l).unwrap();
        }
    }
    // state remains consistent: candidates superset of truth
    let truth = oracle_containment(session.query().graph(), system.db());
    for id in &truth {
        assert!(session.exact_candidates().contains(id));
    }
    let outcome = session.run().unwrap();
    if let QueryResults::Exact(ids) = outcome.results {
        assert_eq!(ids, truth);
    }
}

#[test]
fn modification_in_similarity_mode() {
    let system = build_system();
    let spec = derive_similarity_query(
        system.db(),
        &[],
        &DeriveConfig {
            size: 5,
            kind: QueryKind::WorstCase,
            seed: 41,
        },
        "M",
    )
    .expect("derivable");
    let mut session = system.session(2);
    replay(&mut session, &spec);
    session.choose_similarity().unwrap();
    // delete any deletable edge; the similarity candidates must refresh
    let Some(&label) = session
        .query()
        .live_labels()
        .iter()
        .find(|&&l| session.query().edge_is_deletable(l))
    else {
        return;
    };
    session.delete_edge(label).unwrap();
    assert!(session.similarity_candidates().is_some());
    // run still works and matches the oracle size
    let outcome = session.run().unwrap();
    if let QueryResults::Similar(results) = outcome.results {
        let want = common::oracle_similarity(session.query().graph(), system.db(), 2);
        assert_eq!(results.matches.len(), want.len());
    }
}

#[test]
fn undeletable_edges_rejected_cleanly() {
    let system = build_system();
    let mut session = system.session(2);
    let a = session.add_node(prague_graph::Label(0));
    let b = session.add_node(prague_graph::Label(0));
    session.add_edge(a, b).unwrap();
    // single edge is not deletable
    assert!(session.delete_edge(1).is_err());
    // session still consistent
    assert_eq!(session.query().size(), 1);
    assert!(session.run().is_ok());
}

#[test]
fn batched_deletion_equals_sequential() {
    let system = build_system();
    let spec = derive_containment_query(system.db(), 6, 29, "B").expect("derivable");
    // find two edges deletable together (validate on a canvas clone)
    let mut probe = system.session(2);
    replay(&mut probe, &spec);
    let labels = probe.query().live_labels();
    let mut pair = None;
    'outer: for i in 0..labels.len() {
        for j in 0..labels.len() {
            if i == j {
                continue;
            }
            let mut trial = probe.query().clone();
            if trial.delete_edge(labels[i]).is_ok() && trial.delete_edge(labels[j]).is_ok() {
                pair = Some((labels[i], labels[j]));
                break 'outer;
            }
        }
    }
    let Some((a, b)) = pair else { return };

    let mut batched = system.session(2);
    replay(&mut batched, &spec);
    let out = batched.delete_edges(&[a, b]).expect("validated pair");
    assert_eq!(out.edge, b);

    let mut sequential = system.session(2);
    replay(&mut sequential, &spec);
    sequential.delete_edge(a).unwrap();
    sequential.delete_edge(b).unwrap();

    assert_eq!(batched.exact_candidates(), sequential.exact_candidates());
    assert_eq!(
        batched.query().live_labels(),
        sequential.query().live_labels()
    );
}

#[test]
fn batched_deletion_invalid_leaves_session_untouched() {
    let system = build_system();
    let spec = derive_containment_query(system.db(), 4, 2, "B").expect("derivable");
    let mut session = system.session(2);
    replay(&mut session, &spec);
    let before = session.exact_candidates().to_vec();
    let labels = session.query().live_labels();
    // deleting everything must fail (empty query not allowed)
    assert!(session.delete_edges(&labels).is_err());
    assert_eq!(session.exact_candidates(), before);
    assert_eq!(session.query().size(), spec.size());
}

#[test]
fn relabel_node_equals_fresh_formulation() {
    let system = build_system();
    let spec = derive_containment_query(system.db(), 5, 37, "R").expect("derivable");
    let mut session = system.session(2);
    replay(&mut session, &spec);

    // relabel node 0 to a different atom
    let old_label = spec.node_labels[0];
    let new_label = prague_graph::Label(if old_label.0 == 0 { 1 } else { 0 });
    let new_edges = session.relabel_node(0, new_label).expect("relabel");
    assert!(!new_edges.is_empty() || spec.edges.iter().all(|&(u, v)| u != 0 && v != 0));

    // fresh session over the relabeled query
    let mut relabeled = spec.clone();
    relabeled.node_labels[0] = new_label;
    let mut fresh = system.session(2);
    replay(&mut fresh, &relabeled);

    assert_eq!(session.exact_candidates(), fresh.exact_candidates());
    // and the final results agree with brute force on the relabeled graph
    let truth = oracle_containment(&relabeled.graph(), system.db());
    if let QueryResults::Exact(ids) = session.run().unwrap().results {
        assert_eq!(ids, truth);
    } else {
        assert!(truth.is_empty());
    }
}

#[test]
fn relabel_isolated_node_is_cheap() {
    let system = build_system();
    let mut session = system.session(2);
    let a = session.add_node(prague_graph::Label(0));
    let b = session.add_node(prague_graph::Label(0));
    let lonely = session.add_node(prague_graph::Label(2));
    session.add_edge(a, b).unwrap();
    let new_edges = session
        .relabel_node(lonely, prague_graph::Label(3))
        .unwrap();
    assert!(new_edges.is_empty());
    assert_eq!(session.query().size(), 1);
}
