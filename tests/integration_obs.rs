//! Observability integration: the documented performance model
//! (ARCHITECTURE.md) and the metrics the pipeline actually emits must
//! agree, and an instrumented session must attribute (almost) all of an
//! edge step's wall clock to named phases.
//!
//! Drift protection works in both directions:
//! * the `obs-names` table in ARCHITECTURE.md is parsed and compared —
//!   order included — against `prague_obs::names::ALL`;
//! * every span/counter/histogram a real molecule-fixture session emits
//!   must appear in that same list, and the core span set must be present.

use prague::{PragueSystem, QueryResults, SystemParams};
use prague_datagen::MoleculeConfig;
use prague_obs::{names, MetricKind, Obs, SpanSnap};

/// Parse the rows between the `obs-names` markers of ARCHITECTURE.md into
/// `(name, kind-label)` pairs, in document order.
fn documented_metrics() -> Vec<(String, String)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ARCHITECTURE.md");
    let text = std::fs::read_to_string(path).expect("ARCHITECTURE.md readable");
    let begin = text
        .find("<!-- obs-names:begin -->")
        .expect("obs-names:begin marker present");
    let end = text
        .find("<!-- obs-names:end -->")
        .expect("obs-names:end marker present");
    let mut rows = Vec::new();
    for line in text[begin..end].lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some(first) = cells.nth(1) else { continue };
        // data rows carry a backtick-quoted metric name in the first cell
        let Some(name) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue;
        };
        let kind = cells.next().expect("kind cell present").to_string();
        rows.push((name.to_string(), kind));
    }
    rows
}

#[test]
fn architecture_table_matches_names_in_code() {
    let documented = documented_metrics();
    let in_code: Vec<(String, String)> = names::ALL
        .iter()
        .map(|&(name, kind)| (name.to_string(), kind.label().to_string()))
        .collect();
    assert_eq!(
        documented, in_code,
        "ARCHITECTURE.md § Performance model and prague_obs::names::ALL \
         must list exactly the same metrics in the same order"
    );
}

/// Build a small molecule system, replay an interactive session covering
/// every action kind, and return the snapshot plus run results.
fn instrumented_session_snapshot() -> prague_obs::Snapshot {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 150,
        seed: 0x0B51,
        ..Default::default()
    });
    let mut system = PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.1,
            beta: 4,
            max_fragment_edges: 6,
            ..Default::default()
        },
    )
    .expect("system builds");
    system.set_obs(Obs::enabled());

    // C-S-C plus a C-C appendage: exact-matchable in the molecule corpus
    let mut session = system.session(2);
    let c = system.labels().get("C").expect("carbon label");
    let s = system.labels().get("S").expect("sulfur label");
    let n0 = session.add_node(c);
    let n1 = session.add_node(s);
    let n2 = session.add_node(c);
    let n3 = session.add_node(c);
    session.add_edge(n0, n1).expect("connected step");
    session.add_edge(n1, n2).expect("connected step");
    let e3 = session.add_edge(n2, n3).expect("connected step").edge;
    // exercise Modify + SimQuery too, so their spans exist
    session.delete_edge(e3).expect("deletable leaf edge");
    session.choose_similarity().expect("similarity switch");
    let outcome = session.run().expect("runnable");
    match outcome.results {
        QueryResults::Exact(ids) => assert!(!ids.is_empty(), "exact results"),
        QueryResults::Similar(r) => assert!(!r.matches.is_empty(), "similar results"),
    }
    system.obs().snapshot().expect("obs enabled")
}

#[test]
fn session_emits_only_documented_names_and_the_core_span_set() {
    let snap = instrumented_session_snapshot();
    let documented: std::collections::BTreeSet<&str> = names::ALL.iter().map(|&(n, _)| n).collect();

    for name in snap.span_names() {
        assert!(
            documented.contains(name.as_str()),
            "undocumented span {name:?} emitted — add it to prague_obs::names \
             and the ARCHITECTURE.md table"
        );
    }
    for name in snap.counter_names() {
        assert!(
            documented.contains(name.as_str()),
            "undocumented counter {name:?}"
        );
    }
    for name in snap.histogram_names() {
        assert!(
            documented.contains(name.as_str()),
            "undocumented histogram {name:?}"
        );
    }

    // the span names any interactive session must produce
    let spans = snap.span_names();
    for required in [
        names::SESSION_ADD_EDGE,
        names::SESSION_DELETE_EDGE,
        names::SESSION_CHOOSE_SIMILARITY,
        names::SESSION_RUN,
        names::SPIG_CONSTRUCT,
        names::SPIG_CAM,
        names::SPIG_DELETE,
        names::CANDIDATES_EXACT,
        names::CANDIDATES_SIMILAR,
    ] {
        assert!(
            spans.contains(required),
            "span {required:?} missing from session"
        );
    }
    // kinds must match the documentation, not just the names
    for &(name, kind) in names::ALL {
        let emitted = match kind {
            MetricKind::Span => snap.span_names().contains(name),
            MetricKind::Counter => snap.counter_names().contains(name),
            MetricKind::Histogram => snap.histogram_names().contains(name),
        };
        let other_kind = snap.span_names().contains(name) as u8
            + snap.counter_names().contains(name) as u8
            + snap.histogram_names().contains(name) as u8;
        assert!(
            other_kind == emitted as u8,
            "{name:?} emitted under a kind other than the documented {}",
            kind.label()
        );
    }
    // step latencies were histogrammed once per action (3 adds + delete +
    // similarity + run)
    let steps = snap
        .histogram(names::SESSION_STEP_NS)
        .expect("step histogram");
    assert_eq!(steps.count, 6, "one session.step_ns observation per action");
}

/// Similarity verification accounting regression pin: the session caches
/// its `SimVerifier` (fragments + hoisted `MatchOrder`s) per canvas
/// generation, so clicking Run repeatedly on an unmodified query must
/// expand exactly the same number of VF2 states each time — no rebuild
/// churn, no drift.
#[test]
fn repeat_runs_expand_identical_vf2_state_counts() {
    let ds = prague_datagen::molecules_generate(&MoleculeConfig {
        graphs: 150,
        seed: 0x0B51,
        ..Default::default()
    });
    let mut system = PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.1,
            beta: 2,
            // shallower than the 3-edge query below, so its top SPIG level
            // is never indexed and SimVerify has real work to do
            max_fragment_edges: 2,
            ..Default::default()
        },
    )
    .expect("system builds");
    system.set_obs(Obs::enabled());
    let c = system.labels().get("C").expect("carbon label");
    let s = system.labels().get("S").expect("sulfur label");
    let mut session = system.session(2);
    let labels = [c, s, c, c];
    let nodes: Vec<_> = labels.iter().map(|&l| session.add_node(l)).collect();
    for w in nodes.windows(2) {
        session.add_edge(w[0], w[1]).expect("connected step");
    }
    session.choose_similarity().expect("similarity switch");

    let states = |sys: &PragueSystem| {
        sys.obs()
            .snapshot()
            .expect("obs enabled")
            .counter(names::VERIFY_VF2_STATES)
            .unwrap_or(0)
    };
    let mut marks = vec![states(&system)];
    for _ in 0..3 {
        session.run().expect("runnable");
        marks.push(states(&system));
    }
    let deltas: Vec<u64> = marks.windows(2).map(|w| w[1] - w[0]).collect();
    assert!(deltas[0] > 0, "similarity run must verify something");
    assert!(
        deltas.windows(2).all(|w| w[0] == w[1]),
        "vf2 state count drifted across repeat runs: {deltas:?}"
    );
}

#[test]
fn edge_step_wall_clock_is_attributed_to_phases() {
    let snap = instrumented_session_snapshot();
    fn check(span: &SpanSnap) {
        assert!(
            span.children_total_ns() <= span.total_ns,
            "children of {} exceed their parent: {} > {}",
            span.name,
            span.children_total_ns(),
            span.total_ns
        );
        for child in &span.children {
            check(child);
        }
    }
    for root in &snap.spans {
        check(root);
    }

    let add = snap
        .spans
        .iter()
        .find(|s| s.name == names::SESSION_ADD_EDGE)
        .expect("add_edge is a root span");
    assert!(
        add.child_coverage() >= 0.90,
        "edge-step attribution below 90%: {:.1}% ({} of {} ns)",
        add.child_coverage() * 100.0,
        add.children_total_ns(),
        add.total_ns
    );
    let phase_names: Vec<&str> = add.children.iter().map(|c| c.name.as_str()).collect();
    assert!(phase_names.contains(&names::SPIG_CONSTRUCT));
    assert!(phase_names.contains(&names::CANDIDATES_EXACT));
}
