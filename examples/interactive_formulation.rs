//! Interactive-formulation walkthrough: replays the paper's Figure 3
//! experience — a user drawing a query edge-at-a-time, the system
//! processing each fragment inside the GUI latency, an option dialogue when
//! exact matches run out, a modification, and finally Run.
//!
//! Run with: `cargo run --release --example interactive_formulation`

use prague::{PragueSystem, QueryResults, StepStatus, SystemParams};
use prague_datagen::{molecules_generate, MoleculeConfig};
use std::time::Duration;

/// The latency the GUI naturally offers between edges (the paper observes
/// at least ~2 s per drawn edge, excluding thinking time).
const GUI_LATENCY: Duration = Duration::from_secs(2);

fn main() {
    let ds = molecules_generate(&MoleculeConfig {
        graphs: 1_500,
        ..Default::default()
    });
    let system = PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.1,
            beta: 4,
            max_fragment_edges: 8,
            ..Default::default()
        },
    )
    .expect("build");
    system.warm().expect("index store readable");

    println!("┌──────┬────────────┬────────────┬──────────────┬──────────┐");
    println!("│ step │ status     │ candidates │ processing   │ headroom │");
    println!("├──────┼────────────┼────────────┼──────────────┼──────────┤");

    let mut session = system.session(2);
    // Sketch: a carbon ring with an S tail, then one edge that kills the
    // exact matches (mirrors Figure 3 Sequence 1's trajectory).
    let c: Vec<_> = (0..5)
        .map(|_| session.add_named_node("C").unwrap())
        .collect();
    let s = session.add_named_node("S").unwrap();
    let hg = session.add_named_node("Hg").unwrap();
    let sequence = [
        (c[0], c[1]),
        (c[1], c[2]),
        (c[2], c[3]),
        (c[3], c[4]),
        (c[4], c[0]), // ring closes
        (c[0], s),
        (s, hg), // S-Hg bond: unlikely to have exact support
    ];

    let mut pending_suggestion = None;
    for &(u, v) in &sequence {
        let step = match session.add_edge(u, v) {
            Ok(s) => s,
            Err(e) => {
                println!("│  --  │ rejected: {e}");
                continue;
            }
        };
        let status = match step.status {
            StepStatus::Frequent => "frequent",
            StepStatus::Infrequent => "infrequent",
            StepStatus::Similar => "similar",
        };
        let used = step.total_time();
        let headroom = GUI_LATENCY.saturating_sub(used);
        println!(
            "│ e{:<4}│ {:<11}│ {:>10} │ {:>9} µs │ {:>6} ms │",
            step.edge,
            status,
            step.candidate_count,
            used.as_micros(),
            headroom.as_millis()
        );
        if let Some(sug) = step.suggestion.clone() {
            pending_suggestion = Some(sug);
        }
    }
    println!("└──────┴────────────┴────────────┴──────────────┴──────────┘");

    // Option dialogue: the user first tries the system's suggestion…
    if let Some(sug) = pending_suggestion {
        println!(
            "\noption dialogue: no exact match. Suggestion: delete e{} (→ {} candidates)",
            sug.edge,
            sug.candidates.len()
        );
        let out = session
            .delete_edge(sug.edge)
            .expect("suggested edge deletable");
        println!(
            "user accepts: modification took {} µs, {} candidates",
            out.modify_time.as_micros(),
            out.candidate_count
        );
        // …then changes their mind, re-draws the bond, and opts for
        // similarity search instead (the paper's SimQuery action).
        let step = session.add_edge(s, hg).expect("re-draw");
        println!(
            "user re-draws the bond (e{}) and picks 'similar matches'",
            step.edge
        );
        let n = session.choose_similarity().expect("index store readable");
        println!("similarity candidates: {n}");
    } else {
        println!("\n(query had exact matches throughout — running as containment)");
    }

    let outcome = session.run().expect("run");
    println!("\nRUN pressed. SRT = {:?}", outcome.srt);
    match outcome.results {
        QueryResults::Exact(ids) => println!("{} exact matches", ids.len()),
        QueryResults::Similar(r) => {
            println!("{} ranked approximate matches:", r.matches.len());
            for m in r.matches.iter().take(8) {
                println!("  graph {:>5}  missing {} edge(s)", m.graph_id, m.distance);
            }
        }
    }
    println!(
        "\nSPIG set: {} SPIGs, {} vertices, {:.1} KiB",
        session.spigs().len(),
        session.spigs().total_vertices(),
        session.spigs().byte_size() as f64 / 1024.0
    );
}
