//! Drug-discovery scenario: search a molecular compound database for
//! structures similar to a candidate scaffold — the workload the paper's
//! introduction motivates (AIDS antiviral screening).
//!
//! A chemist sketches a sulfur-bridged carbon scaffold. The exact scaffold
//! doesn't occur in the corpus, so PRAGUE transparently switches to
//! substructure-similarity search and returns compounds ranked by how few
//! bonds they miss.
//!
//! Run with: `cargo run --release --example drug_discovery`

use prague::{PragueSystem, QueryResults, SystemParams};
use prague_datagen::{molecules_generate, MoleculeConfig};

fn main() {
    println!("generating compound corpus…");
    let ds = molecules_generate(&MoleculeConfig {
        graphs: 2_000,
        ..Default::default()
    });
    println!(
        "  {} compounds, avg {:.1} bonds",
        ds.db.len(),
        ds.db.avg_edges()
    );

    println!("mining fragments and building action-aware indexes…");
    let t0 = std::time::Instant::now();
    let system = PragueSystem::build_with_labels(
        ds.db,
        ds.labels,
        SystemParams {
            alpha: 0.1,
            beta: 4,
            max_fragment_edges: 8,
            ..Default::default()
        },
    )
    .expect("build");
    system.warm().expect("index store readable");
    println!(
        "  {} frequent fragments, {} DIFs in {:?}; index {:.2} MB",
        system.stats().frequent_fragments,
        system.stats().difs,
        t0.elapsed(),
        system.index_footprint().total_mb()
    );

    // The chemist's scaffold: a carbon chain bridged by sulfur, with a
    // nitrogen substituent — drawn bond by bond.
    let mut session = system.session(2);
    let c1 = session.add_named_node("C").unwrap();
    let c2 = session.add_named_node("C").unwrap();
    let c3 = session.add_named_node("C").unwrap();
    let s1 = session.add_named_node("S").unwrap();
    let n1 = session.add_named_node("N").unwrap();
    let hg = session.add_named_node("Hg").unwrap();

    let sketch = [(c1, c2), (c2, c3), (c3, s1), (s1, n1), (n1, hg)];
    for (step_no, &(u, v)) in sketch.iter().enumerate() {
        match session.add_edge(u, v) {
            Ok(step) => {
                println!(
                    "bond {}: status {:?}, {} candidate compounds ({} µs)",
                    step_no + 1,
                    step.status,
                    step.candidate_count,
                    step.total_time().as_micros()
                );
                if let Some(s) = &step.suggestion {
                    println!(
                        "    (no exact match — deleting bond e{} would restore {} candidates)",
                        s.edge,
                        s.candidates.len()
                    );
                }
            }
            Err(e) => {
                println!("bond {} rejected: {e}", step_no + 1);
            }
        }
    }

    // No exact hit is fine for lead discovery: ask for near misses.
    let candidates = session.choose_similarity().expect("index store readable");
    println!("similarity mode (σ = 2): {candidates} candidates");

    let outcome = session.run().expect("run");
    match outcome.results {
        QueryResults::Similar(results) => {
            println!(
                "{} compounds within 2 missing bonds (SRT {:?}, {} verified):",
                results.matches.len(),
                outcome.srt,
                results.verified_count
            );
            for m in results.matches.iter().take(10) {
                let g = system.db().graph(m.graph_id);
                let formula = formula_of(g, system.labels());
                println!(
                    "  #{:<5} dist {}  {:>3} atoms  {}",
                    m.graph_id,
                    m.distance,
                    g.node_count(),
                    formula
                );
            }
            if results.matches.len() > 10 {
                println!("  … and {} more", results.matches.len() - 10);
            }
        }
        QueryResults::Exact(ids) => {
            println!("exact scaffold hits: {ids:?} (SRT {:?})", outcome.srt);
        }
    }
}

/// Rough molecular formula for display.
fn formula_of(g: &prague_graph::Graph, labels: &prague_graph::LabelTable) -> String {
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for &l in g.labels() {
        *counts.entry(labels.name(l).unwrap_or("?")).or_default() += 1;
    }
    counts
        .iter()
        .map(|(sym, n)| {
            if *n > 1 {
                format!("{sym}{n}")
            } else {
                (*sym).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("")
}
