//! Similarity explorer: sweep the distance threshold σ on one query and
//! watch candidate sets, verification-free shares and result counts evolve —
//! then compare PRAGUE's candidate pruning against the Grafil and SIGMA
//! baselines on the same query.
//!
//! Run with: `cargo run --release --example similarity_explorer`

use prague::{PragueSystem, QueryResults, SystemParams};
use prague_baselines::{FeatureIndex, FeatureIndexConfig, Grafil, Sigma, SimilaritySearch};
use prague_datagen::{
    derive_similarity_query, molecules_generate, DeriveConfig, MoleculeConfig, QueryKind,
};
use prague_mining::mine_classified;

fn main() {
    let ds = molecules_generate(&MoleculeConfig {
        graphs: 1_500,
        ..Default::default()
    });
    let db = ds.db;

    println!("mining (α = 0.1)…");
    let mining = mine_classified(&db, 0.1, 8);
    let features = FeatureIndex::build(&mining, &db, &FeatureIndexConfig::default());
    let system = PragueSystem::from_mining_result(
        db,
        ds.labels,
        mining,
        SystemParams {
            alpha: 0.1,
            beta: 4,
            max_fragment_edges: 8,
            ..Default::default()
        },
    )
    .expect("build");
    system.warm().expect("index store readable");

    // Derive a worst-case query (infrequent scaffold + one impossible bond).
    let spec = derive_similarity_query(
        system.db(),
        &[],
        &DeriveConfig {
            size: 7,
            kind: QueryKind::WorstCase,
            seed: 2012,
        },
        "explorer",
    )
    .expect("derivable query");
    let q = spec.graph();
    println!(
        "query: {} edges, {} nodes (no exact match by construction)\n",
        q.edge_count(),
        q.node_count()
    );

    println!("σ  | PRG cand (free/ver) | PRG results | PRG SRT    | GR cand | GR SRT     | SG cand | SG SRT");
    println!("---+---------------------+-------------+------------+---------+------------+---------+-----------");
    for sigma in 1..=4usize {
        // PRAGUE: formulate edge-at-a-time, then run.
        let mut session = system.session(sigma);
        let nodes: Vec<_> = spec
            .node_labels
            .iter()
            .map(|&l| session.add_node(l))
            .collect();
        for &(u, v) in &spec.edges {
            session
                .add_edge(nodes[u as usize], nodes[v as usize])
                .expect("valid");
        }
        session.choose_similarity().expect("index store readable");
        let (free, total) = session
            .similarity_candidates()
            .map(|c| (c.distinct_free(), c.distinct_candidates()))
            .unwrap_or((0, 0));
        let outcome = session.run().expect("run");
        let (n_results, srt) = match &outcome.results {
            QueryResults::Similar(r) => (r.matches.len(), outcome.srt),
            QueryResults::Exact(ids) => (ids.len(), outcome.srt),
        };

        // Baselines evaluate the whole query after Run.
        let gr = Grafil::new(&features).search(&q, sigma, system.db());
        let sg = Sigma::new(&features).search(&q, sigma, system.db());

        println!(
            "{sigma}  | {total:>7} ({free:>5}/{ver:>5}) | {n_results:>11} | {srt:>8.1?} | {grc:>7} | {grt:>8.1?} | {sgc:>7} | {sgt:>8.1?}",
            ver = total - free,
            grc = gr.candidates.len(),
            grt = gr.srt(),
            sgc = sg.candidates.len(),
            sgt = sg.srt(),
        );
    }

    println!(
        "\nindex sizes: PRAGUE {:.2} MB  |  GR/SG features {:.2} MB",
        system.index_footprint().total_mb(),
        features.footprint().total_mb()
    );
}
