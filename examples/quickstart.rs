//! Quickstart: build a PRAGUE system over a tiny hand-made graph database
//! and run one visual query, exact and similar.
//!
//! Run with: `cargo run --example quickstart`

use prague::{PragueSystem, QueryResults, SystemParams};
use prague_graph::{Graph, GraphDb, Label, LabelTable};

fn main() {
    // Label alphabet: a miniature "chemistry".
    let mut labels = LabelTable::new();
    let c = labels.intern("C");
    let s = labels.intern("S");
    let o = labels.intern("O");

    // A small database: C-S-C chains, C rings, one odd molecule.
    let mut db = GraphDb::new();
    for _ in 0..5 {
        db.push(chain(&[c, s, c]));
    }
    for _ in 0..4 {
        db.push(ring(&[c, c, c, c]));
    }
    db.push(chain(&[c, s, o]));

    // Offline: mine frequent fragments and DIFs, build the A2F/A2I indexes.
    let system = PragueSystem::build_with_labels(
        db,
        labels,
        SystemParams {
            alpha: 0.3,
            beta: 2,
            max_fragment_edges: 5,
            ..Default::default()
        },
    )
    .expect("build");
    println!(
        "built: {} frequent fragments, {} DIFs, index {:.2} MB",
        system.stats().frequent_fragments,
        system.stats().difs,
        system.index_footprint().total_mb()
    );

    // Online: draw C-S-C edge by edge. After every edge PRAGUE refreshes
    // its candidates inside the GUI latency.
    let mut session = system.session(1);
    let n1 = session.add_named_node("C").unwrap();
    let n2 = session.add_named_node("S").unwrap();
    let n3 = session.add_named_node("C").unwrap();
    for (u, v) in [(n1, n2), (n2, n3)] {
        let step = session.add_edge(u, v).expect("valid edge");
        println!(
            "drew e{} -> status {:?}, {} candidates ({:?} processing)",
            step.edge,
            step.status,
            step.candidate_count,
            step.total_time()
        );
    }

    // Run: the SRT is just the residual verification work.
    let outcome = session.run().expect("run");
    match &outcome.results {
        QueryResults::Exact(ids) => {
            println!("exact matches: {ids:?}  (SRT {:?})", outcome.srt)
        }
        QueryResults::Similar(r) => {
            println!(
                "approximate matches: {:?}  (SRT {:?})",
                r.ids(),
                outcome.srt
            )
        }
    }

    // Now a query with NO exact match: C-S-C plus an S-S edge that never
    // occurs. PRAGUE flags it and suggests what to delete.
    let mut session = system.session(1);
    let n1 = session.add_named_node("C").unwrap();
    let n2 = session.add_named_node("S").unwrap();
    let n3 = session.add_named_node("C").unwrap();
    let n4 = session.add_named_node("S").unwrap();
    session.add_edge(n1, n2).unwrap();
    session.add_edge(n2, n3).unwrap();
    let step = session.add_edge(n2, n4).unwrap(); // S-S bond: never occurs in D
    println!("after e3: status {:?}", step.status);
    if let Some(s) = &step.suggestion {
        println!(
            "PRAGUE suggests deleting e{} (restores {} candidates)",
            s.edge,
            s.candidates.len()
        );
    }
    // ...but the user keeps the edge and asks for similar graphs instead.
    let n = session.choose_similarity().expect("index store readable");
    println!("similarity mode: {n} candidate graphs");
    let outcome = session.run().expect("run");
    if let QueryResults::Similar(r) = &outcome.results {
        for m in &r.matches {
            println!(
                "  graph {} at distance {} ({})",
                m.graph_id,
                m.distance,
                if m.verification_free {
                    "verification-free"
                } else {
                    "verified"
                }
            );
        }
    }
}

fn chain(labels: &[Label]) -> Graph {
    let mut g = Graph::new();
    let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(l)).collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1]).unwrap();
    }
    g
}

fn ring(labels: &[Label]) -> Graph {
    let mut g = chain(labels);
    g.add_edge(labels.len() as u32 - 1, 0).unwrap();
    g
}
