//! Offline shim for `criterion`: a minimal wall-clock benchmark harness with
//! the same macro surface (`criterion_group!` / `criterion_main!`,
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`). It runs
//! each benchmark for a fixed number of samples and prints mean/min timings —
//! no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the shim
/// always materializes one input per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Per-function benchmark driver handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.timings.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.timings.push(start.elapsed());
            drop(out);
        }
    }
}

/// Benchmark registry and configuration.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut bencher);
        let n = bencher.timings.len().max(1);
        let total: Duration = bencher.timings.iter().sum();
        let mean = total / n as u32;
        let min = bencher.timings.iter().min().copied().unwrap_or_default();
        println!("bench {name:<45} mean {mean:>12?}  min {min:>12?}  ({n} samples)");
        self
    }
}

/// Declare a benchmark group: either the plain list form or the
/// `name/config/targets` form of the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

/// Opaque value barrier. Re-exported name for compatibility; prefer
/// `std::hint::black_box` in new code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_samples() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("shim_smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut outputs = Vec::new();
        let mut next = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| outputs.push(v),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(outputs, vec![1, 2, 3]);
    }
}
