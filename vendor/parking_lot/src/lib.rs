//! Offline shim for `parking_lot`: a [`Mutex`] with the parking_lot API
//! (`lock()` returns the guard directly) implemented over `std::sync::Mutex`.
//! Poisoning is deliberately transparent — a panic while holding the lock
//! does not poison it for later readers, matching parking_lot semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Mutual exclusion primitive with infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Never fails: a
    /// poisoned std mutex is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
