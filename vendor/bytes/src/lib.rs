//! Offline shim for the `bytes` crate.
//!
//! Implements only the surface the PRAGUE workspace uses: an append-only
//! builder ([`BytesMut`]), a cheaply-clonable immutable buffer ([`Bytes`]),
//! and the [`Buf`]/[`BufMut`] read/write cursors for `&[u8]` / `BytesMut`.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer (`Arc<[u8]>` under the hood).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Growable byte buffer used as an encoder target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `cnt` bytes. Panics if fewer remain (matches the real crate).
    fn advance(&mut self, cnt: usize);

    /// Read one byte. Panics if none remain (matches the real crate).
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }
}

/// Write cursor over a byte sink.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        b.extend_from_slice(&[4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 4);
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 1);
        cur.advance(2);
        assert_eq!(cur.remaining(), 1);
        assert!(cur.has_remaining());
        assert_eq!(cur.get_u8(), 4);
        assert!(!cur.has_remaining());
    }
}
