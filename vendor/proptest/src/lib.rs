//! Offline shim for `proptest`: the subset of the API this workspace's
//! property tests use, generated deterministically and without shrinking.
//!
//! Each `proptest!` test derives its RNG seed from the test's module path
//! and name (FNV-1a), so every run of the suite explores the same cases —
//! reproducibility over adversarial coverage. A failing case panics with the
//! case number and the `prop_assert*` message; rerunning reproduces it
//! exactly.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, integer/float range strategies,
//! tuple strategies, [`Just`], [`collection::vec`], `num::*::ANY`,
//! `bool::ANY`, and the combinators `prop_map`, `prop_flat_map`,
//! `prop_filter`, `prop_shuffle`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-runner types (`Config`, RNG, failure type).
pub mod test_runner {
    use super::*;

    /// Runner configuration — only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to generate per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert*` / returned from a test body.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Alias of [`TestCaseError::fail`] kept for API compatibility.
        pub fn reject<S: Into<String>>(message: S) -> Self {
            Self::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// Seed from a test's fully-qualified name (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
            }
        }

        pub(crate) fn rng(&mut self) -> &mut SmallRng {
            &mut self.inner
        }
    }
}

use test_runner::TestRng;

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries, then panic —
    /// the shim has no rejection bookkeeping).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }

    /// Uniformly permute a generated `Vec`.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { base: self }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.whence);
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    base: S,
}

impl<T, S> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.base.generate(rng);
        // Fisher–Yates
        for i in (1..v.len()).rev() {
            let j = rng.rng().random_range(0..=i);
            v.swap(i, j);
        }
        v
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.rng().random::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Full-range strategy for a primitive (`num::u32::ANY`-style).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Any<T> {
    const NEW: Any<T> = Any(std::marker::PhantomData);
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random::<u64>() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng().random::<u64>() & 1 == 1
    }
}

/// Full-range primitive strategies, mirroring `proptest::num`.
pub mod num {
    macro_rules! any_mod {
        ($($m:ident / $t:ty),*) => {$(
            /// Strategies for this primitive.
            pub mod $m {
                /// Any value of the primitive, uniformly.
                pub const ANY: crate::Any<$t> = crate::Any::<$t>::NEW;
            }
        )*};
    }
    any_mod!(u8 / u8, u16 / u16, u32 / u32, u64 / u64, usize / usize);
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    /// Either boolean, uniformly.
    pub const ANY: crate::Any<std::primitive::bool> = crate::Any::<std::primitive::bool>::NEW;
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Acceptable length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng
                .rng()
                .random_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests. Each `#[test] fn name(pat in strategy, ...)` block
/// becomes a standard `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let strategy = ($($strat),+);
                #[allow(unused_parens)]
                let ($($pat),+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = crate::collection::vec(0usize..100, 3..=6);
        let mut r1 = crate::test_runner::TestRng::for_test("t");
        let mut r2 = crate::test_runner::TestRng::for_test("t");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..=5)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n))
            .prop_map(|v| v.len())
            .prop_filter("nonzero", |&n| n > 0);
        let mut rng = crate::test_runner::TestRng::for_test("c");
        for _ in 0..50 {
            let n = strat.generate(&mut rng);
            assert!((1..=5).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let strat = Just((0..10usize).collect::<Vec<_>>()).prop_shuffle();
        let mut rng = crate::test_runner::TestRng::for_test("s");
        let mut v = strat.generate(&mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_single_param(x in 0usize..10) {
            prop_assert!(x < 10);
        }

        #[test]
        fn macro_multi_param((a, b) in (0u32..5, 0u32..5), c in crate::bool::ANY) {
            prop_assert!(a < 5 && b < 5);
            if c {
                return Ok(());
            }
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + 1);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in crate::collection::vec(crate::num::u8::ANY, 0..8)) {
            prop_assert!(v.len() < 8, "len {}", v.len());
        }
    }
}
