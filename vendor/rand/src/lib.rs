//! Offline shim for the `rand` 0.9 API subset this workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `random::<f64>()` / `random_range(<int range>)`.
//!
//! The core generator is xoshiro256** seeded via SplitMix64 — deterministic
//! per seed, which is the only property in-tree consumers rely on (the
//! stream differs from upstream `rand`).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from a range — implemented for the integer
/// range types the workspace draws from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Debiased multiply-shift (Lemire); span is < 2^63 for all
                // in-tree uses so the rejection loop terminates fast.
                loop {
                    let r = rng.next_u64();
                    let hi = ((r as u128 * span as u128) >> 64) as u64;
                    let lo = (r as u128 * span as u128) as u64;
                    if lo >= span.wrapping_neg() % span || span.is_power_of_two() {
                        return self.start + hi as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample from empty range");
                if s == e {
                    return s;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize);

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of type `T` (`f64` in `[0,1)`, full-width integers).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Sample uniformly from an integer range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut key = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut key);
            }
            // all-zero state would be a fixed point; splitmix64 never
            // produces four zeros from any key, but guard anyway
            if s == [0; 4] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u16 = rng.random_range(0..5u16);
            assert!(w < 5);
            let x: u32 = rng.random_range(1..=1u32);
            assert_eq!(x, 1);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.random_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "skewed counts {counts:?}");
        }
    }
}
